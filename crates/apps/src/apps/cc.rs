//! Connected components: label propagation and Shiloach–Vishkin.

use gpp_graph::{Graph, NodeId};
use gpp_sim::exec::{Executor, WorkItem};

use crate::app::{AppOutput, Application, Problem};
use crate::kernels;

/// Label propagation: every node starts with its own id; changed nodes
/// push the minimum label to their neighbours until stable.
#[derive(Debug, Clone, Copy, Default)]
pub struct CcLp;

impl Application for CcLp {
    fn name(&self) -> &'static str {
        "cc-lp"
    }

    fn problem(&self) -> Problem {
        Problem::Cc
    }

    fn fastest_variant(&self) -> bool {
        true
    }

    fn run(&self, graph: &Graph, exec: &mut dyn Executor) -> AppOutput {
        let profile = kernels::topology_scan("cc_lp_propagate");
        let n = graph.num_nodes();
        let mut labels: Vec<NodeId> = (0..n as NodeId).collect();
        let mut changed = vec![true; n];
        let mut next_changed = vec![false; n];
        let mut items: Vec<WorkItem> = Vec::with_capacity(n);
        let mut snapshot: Vec<NodeId> = Vec::new();
        loop {
            items.clear();
            items.extend(graph.nodes().map(|u| {
                WorkItem::new(
                    if changed[u as usize] {
                        graph.degree(u) as u32
                    } else {
                        0
                    },
                    0,
                )
            }));
            exec.kernel(&profile, &items);
            // Level-synchronous: a GPU kernel reads the labels written by
            // the *previous* iteration, so the minimum advances one hop
            // per kernel.
            snapshot.clone_from(&labels);
            next_changed.fill(false);
            let mut any = false;
            for u in graph.nodes() {
                if !changed[u as usize] {
                    continue;
                }
                let lu = snapshot[u as usize];
                for &v in graph.neighbors(u) {
                    if lu < labels[v as usize] {
                        labels[v as usize] = lu;
                        next_changed[v as usize] = true;
                        any = true;
                    }
                }
            }
            if !any {
                break;
            }
            std::mem::swap(&mut changed, &mut next_changed);
        }
        AppOutput::Labels(labels)
    }
}

/// Shiloach–Vishkin: alternate edge-hooking rounds (attach the larger
/// root under the smaller) with pointer-jumping rounds that flatten the
/// parent forest.
#[derive(Debug, Clone, Copy, Default)]
pub struct CcSv;

impl CcSv {
    fn root(parent: &[NodeId], mut x: NodeId) -> NodeId {
        while parent[x as usize] != x {
            x = parent[x as usize];
        }
        x
    }
}

impl Application for CcSv {
    fn name(&self) -> &'static str {
        "cc-sv"
    }

    fn problem(&self) -> Problem {
        Problem::Cc
    }

    fn run(&self, graph: &Graph, exec: &mut dyn Executor) -> AppOutput {
        let hook_profile = kernels::min_edge_scan("cc_sv_hook");
        let jump_profile = kernels::pointer_jump("cc_sv_jump");
        let n = graph.num_nodes();
        let mut parent: Vec<NodeId> = (0..n as NodeId).collect();
        // The hook work is topology-driven and identical every round, and
        // the jump work is always one unit per node: build each item
        // vector once and replay it.
        let hook_items: Vec<WorkItem> = graph
            .nodes()
            .map(|u| WorkItem::new(graph.degree(u) as u32, 0))
            .collect();
        let jump_items: Vec<WorkItem> = (0..n).map(|_| WorkItem::new(1, 0)).collect();
        loop {
            // Hook kernel: every node scans its edges, hooking roots.
            exec.kernel(&hook_profile, &hook_items);
            let mut hooked = false;
            for u in graph.nodes() {
                for &v in graph.neighbors(u) {
                    let (ru, rv) = (Self::root(&parent, u), Self::root(&parent, v));
                    if ru != rv {
                        let (lo, hi) = if ru < rv { (ru, rv) } else { (rv, ru) };
                        parent[hi as usize] = lo;
                        hooked = true;
                    }
                }
            }
            // Pointer-jumping kernels until the forest is flat.
            loop {
                exec.kernel(&jump_profile, &jump_items);
                let mut moved = false;
                for v in 0..n {
                    let p = parent[v];
                    let gp = parent[p as usize];
                    if p != gp {
                        parent[v] = gp;
                        moved = true;
                    }
                }
                if !moved {
                    break;
                }
            }
            if !hooked {
                break;
            }
        }
        let labels: Vec<NodeId> = (0..n as NodeId).map(|v| Self::root(&parent, v)).collect();
        AppOutput::Labels(labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::validate;
    use gpp_graph::generators;
    use gpp_sim::trace::Recorder;

    fn check_on(graph: &Graph) {
        let apps: [&dyn Application; 2] = [&CcLp, &CcSv];
        for app in apps {
            let mut rec = Recorder::new();
            let out = app.run(graph, &mut rec);
            validate(graph, &out).unwrap_or_else(|e| panic!("{}: {e}", app.name()));
        }
    }

    #[test]
    fn correct_on_connected_graphs() {
        check_on(&generators::road_grid(8, 8, 1).unwrap());
        check_on(&generators::cycle(17).unwrap());
    }

    #[test]
    fn correct_on_islands() {
        let g = gpp_graph::GraphBuilder::new(9)
            .undirected()
            .edge(0, 1)
            .edge(1, 2)
            .edge(4, 5)
            .edge(7, 8)
            .build()
            .unwrap();
        check_on(&g);
    }

    #[test]
    fn correct_on_social() {
        check_on(&generators::rmat(8, 4, 11).unwrap());
    }

    #[test]
    fn correct_on_edgeless() {
        let g = gpp_graph::GraphBuilder::new(5).build().unwrap();
        check_on(&g);
    }

    #[test]
    fn sv_converges_in_logarithmic_hook_rounds() {
        // A path is the worst case for label propagation (diameter
        // rounds) but SV flattens it in O(log n) hook rounds.
        let g = generators::path(256).unwrap();
        let mut rec_lp = Recorder::new();
        CcLp.run(&g, &mut rec_lp);
        let mut rec_sv = Recorder::new();
        CcSv.run(&g, &mut rec_sv);
        assert!(rec_sv.into_trace().num_kernels() < rec_lp.into_trace().num_kernels() / 2);
    }
}

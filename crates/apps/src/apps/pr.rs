//! PageRank (damping 0.85): pull, push, and residual-worklist variants.

use gpp_graph::Graph;
use gpp_sim::exec::{Executor, WorkItem};

use crate::app::{pagerank, AppOutput, Application, Problem};
use crate::kernels;

/// Uniform share of dangling (out-degree 0) rank plus the teleport term.
fn iteration_base(graph: &Graph, rank: &[f64]) -> f64 {
    let n = graph.num_nodes() as f64;
    let dangling: f64 = graph
        .nodes()
        .filter(|&u| graph.degree(u) == 0)
        .map(|u| rank[u as usize])
        .sum();
    (1.0 - pagerank::DAMPING) / n + pagerank::DAMPING * dangling / n
}

/// Pull-style power iteration: each node gathers its neighbours' shares.
#[derive(Debug, Clone, Copy, Default)]
pub struct PrPull;

impl Application for PrPull {
    fn name(&self) -> &'static str {
        "pr-pull"
    }

    fn problem(&self) -> Problem {
        Problem::Pr
    }

    fn fastest_variant(&self) -> bool {
        true
    }

    fn run(&self, graph: &Graph, exec: &mut dyn Executor) -> AppOutput {
        let profile = kernels::rank_pull("pr_pull_gather");
        let n = graph.num_nodes();
        let mut rank = vec![1.0 / n as f64; n];
        let mut next = vec![0.0f64; n];
        // Topology-driven: every iteration launches the same item vector,
        // so build it once and replay it.
        let items: Vec<WorkItem> = graph
            .nodes()
            .map(|u| WorkItem::new(graph.degree(u) as u32, 0))
            .collect();
        for _ in 0..pagerank::MAX_ITERS {
            exec.kernel(&profile, &items);
            let base = iteration_base(graph, &rank);
            for slot in next.iter_mut() {
                *slot = base;
            }
            for u in graph.nodes() {
                let d = graph.degree(u);
                if d > 0 {
                    let share = pagerank::DAMPING * rank[u as usize] / d as f64;
                    for &v in graph.neighbors(u) {
                        next[v as usize] += share;
                    }
                }
            }
            let delta: f64 = rank.iter().zip(&next).map(|(a, b)| (a - b).abs()).sum();
            std::mem::swap(&mut rank, &mut next);
            if delta < pagerank::TOLERANCE {
                break;
            }
        }
        AppOutput::Ranks(rank)
    }
}

/// Push-style power iteration: each node scatters its share to its
/// neighbours with atomic adds — the same arithmetic, different kernel.
#[derive(Debug, Clone, Copy, Default)]
pub struct PrPush;

impl Application for PrPush {
    fn name(&self) -> &'static str {
        "pr-push"
    }

    fn problem(&self) -> Problem {
        Problem::Pr
    }

    fn run(&self, graph: &Graph, exec: &mut dyn Executor) -> AppOutput {
        let profile = kernels::rank_push("pr_push_scatter");
        let n = graph.num_nodes();
        let mut rank = vec![1.0 / n as f64; n];
        let mut next = vec![0.0f64; n];
        // Same reuse as pr-pull: the scatter work is topology-driven.
        let items: Vec<WorkItem> = graph
            .nodes()
            .map(|u| WorkItem::new(graph.degree(u) as u32, 0))
            .collect();
        for _ in 0..pagerank::MAX_ITERS {
            exec.kernel(&profile, &items);
            let base = iteration_base(graph, &rank);
            for slot in next.iter_mut() {
                *slot = base;
            }
            for u in graph.nodes() {
                let d = graph.degree(u);
                if d > 0 {
                    let share = pagerank::DAMPING * rank[u as usize] / d as f64;
                    for &v in graph.neighbors(u) {
                        next[v as usize] += share;
                    }
                }
            }
            let delta: f64 = rank.iter().zip(&next).map(|(a, b)| (a - b).abs()).sum();
            std::mem::swap(&mut rank, &mut next);
            if delta < pagerank::TOLERANCE {
                break;
            }
        }
        AppOutput::Ranks(rank)
    }
}

/// Residual-worklist PageRank: only nodes whose rank moved since their
/// last propagation re-scatter; contributions of quiescent nodes are
/// cached. Converges to the same fixed point with a shrinking frontier.
#[derive(Debug, Clone, Copy, Default)]
pub struct PrWl;

/// A node re-propagates once its rank has drifted this far from the value
/// it last propagated.
const ACTIVATION: f64 = 1e-10;

impl Application for PrWl {
    fn name(&self) -> &'static str {
        "pr-wl"
    }

    fn problem(&self) -> Problem {
        Problem::Pr
    }

    fn run(&self, graph: &Graph, exec: &mut dyn Executor) -> AppOutput {
        let profile = kernels::rank_push("pr_wl_scatter");
        let n = graph.num_nodes();
        let mut rank = vec![1.0 / n as f64; n];
        // Last value each node propagated; contrib[v] = sum of cached
        // incoming shares.
        let mut propagated = vec![0.0f64; n];
        let mut contrib = vec![0.0f64; n];
        let mut items: Vec<WorkItem> = Vec::new();
        for _ in 0..pagerank::MAX_ITERS {
            // Active set: nodes whose rank drifted since last propagation.
            items.clear();
            let mut active_any = false;
            for u in graph.nodes() {
                let drift = (rank[u as usize] - propagated[u as usize]).abs();
                if drift > ACTIVATION {
                    active_any = true;
                    let d = graph.degree(u);
                    let mut activations = 0u32;
                    if d > 0 {
                        let new_share = pagerank::DAMPING * rank[u as usize] / d as f64;
                        let old_share = pagerank::DAMPING * propagated[u as usize] / d as f64;
                        let delta = new_share - old_share;
                        for &v in graph.neighbors(u) {
                            contrib[v as usize] += delta;
                            activations += 1;
                        }
                    }
                    propagated[u as usize] = rank[u as usize];
                    items.push(WorkItem::new(graph.degree(u) as u32, activations.min(4)));
                }
            }
            exec.kernel(&profile, &items);
            if !active_any {
                break;
            }
            let base = iteration_base(graph, &propagated);
            let mut delta_sum = 0.0f64;
            for v in 0..n {
                let new_rank = base + contrib[v];
                delta_sum += (new_rank - rank[v]).abs();
                rank[v] = new_rank;
            }
            if delta_sum < pagerank::TOLERANCE {
                break;
            }
        }
        AppOutput::Ranks(rank)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::{reference_pagerank, validate};
    use gpp_graph::generators;
    use gpp_sim::trace::Recorder;

    fn check_on(graph: &Graph) {
        let apps: [&dyn Application; 3] = [&PrPull, &PrPush, &PrWl];
        for app in apps {
            let mut rec = Recorder::new();
            let out = app.run(graph, &mut rec);
            validate(graph, &out).unwrap_or_else(|e| panic!("{}: {e}", app.name()));
        }
    }

    #[test]
    fn correct_on_study_style_inputs() {
        check_on(&generators::road_grid(8, 8, 3).unwrap());
        check_on(&generators::rmat(8, 5, 5).unwrap());
        check_on(&generators::uniform_random(256, 6.0, 7).unwrap());
    }

    #[test]
    fn correct_with_dangling_nodes() {
        // Node 3 is isolated: its rank must be redistributed uniformly.
        let g = gpp_graph::GraphBuilder::new(4)
            .undirected()
            .edge(0, 1)
            .edge(1, 2)
            .build()
            .unwrap();
        check_on(&g);
    }

    #[test]
    fn pull_matches_reference_exactly() {
        let g = generators::rmat(7, 5, 2).unwrap();
        let mut rec = Recorder::new();
        match PrPull.run(&g, &mut rec) {
            AppOutput::Ranks(r) => assert_eq!(r, reference_pagerank(&g)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn worklist_variant_shrinks_its_frontier() {
        let g = generators::uniform_random(500, 6.0, 9).unwrap();
        let mut rec = Recorder::new();
        PrWl.run(&g, &mut rec);
        let trace = rec.into_trace();
        let first = trace
            .calls()
            .next()
            .expect("at least one kernel")
            .items
            .len();
        let last = trace
            .calls()
            .last()
            .expect("at least one kernel")
            .items
            .len();
        assert!(last < first, "frontier should shrink: {first} -> {last}");
    }

    #[test]
    fn ranks_sum_to_one() {
        let g = generators::star(40).unwrap();
        for app in [&PrPull as &dyn Application, &PrPush, &PrWl] {
            let mut rec = Recorder::new();
            match app.run(&g, &mut rec) {
                AppOutput::Ranks(r) => {
                    let sum: f64 = r.iter().sum();
                    assert!((sum - 1.0).abs() < 1e-6, "{}: sum {sum}", app.name());
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }
}

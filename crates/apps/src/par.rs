//! Re-export of the parallel maps, which now live in the [`gpp_par`]
//! executor crate so that `gpp-core`'s analysis pipeline can use the
//! same primitives without inverting the workspace crate DAG.
//!
//! Historical callers keep working through this path: borrowed fan-outs
//! use `gpp_apps::par::par_map_traced` (per-call scoped threads),
//! exactly as before the extraction, while the study/sweep hot phases
//! go through `par_map_pooled_traced` — the persistent process-wide
//! worker pool. See [`gpp_par`] for the semantics (input-order results,
//! chunked dynamic scheduling, cooperative nesting, panic propagation,
//! per-worker `busy-ns` counters when traced).

pub use gpp_par::{
    effective_threads, par_map, par_map_pooled, par_map_pooled_traced, par_map_traced,
};

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn reexported_map_works_through_the_historical_path() {
        let items: Vec<u64> = (0..64).collect();
        let expect: Vec<u64> = items.iter().map(|x| x + 1).collect();
        assert_eq!(par_map(&items, 4, |_, &x| x + 1), expect);
        assert!(effective_threads(2) == 2);
    }

    #[test]
    fn reexported_pooled_map_matches_scoped() {
        let items: Arc<Vec<u64>> = Arc::new((0..64).collect());
        let expect = par_map(&items, 4, |_, &x| x + 1);
        assert_eq!(par_map_pooled(&items, 4, |_, &x| x + 1), expect);
    }
}

//! Minimal work-stealing-free parallel map over a slice, built on
//! [`std::thread::scope`].
//!
//! The study grid only needs one primitive: apply a pure function to
//! every element of a slice and collect the results *in input order*.
//! Workers pull indices from a shared atomic counter (dynamic
//! scheduling, so uneven items — big traces, slow chips — balance out)
//! and results are scattered back to their input slots, so the output is
//! independent of scheduling. No external runtime dependency is needed.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Maps `f` over `items` on up to `threads` worker threads, returning
/// the results in input order.
///
/// `f` receives `(index, &item)`. With `threads <= 1` (or a single
/// item) the map runs inline on the caller's thread — the closure
/// executes on exactly the same items in the same per-item way either
/// way, so results never depend on the thread count.
///
/// # Panics
///
/// If `f` panics for any item, the panic is propagated to the caller
/// with its original payload (after the remaining workers finish).
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = threads.clamp(1, items.len().max(1));
    if threads == 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let per_worker: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let (next, f) = (&next, &f);
                scope.spawn(move || {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        out.push((i, f(i, &items[i])));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(v) => v,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    for (i, r) in per_worker.into_iter().flatten() {
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every index processed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_input_order() {
        let items: Vec<u64> = (0..1000).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [0, 1, 2, 7, 64] {
            assert_eq!(par_map(&items, threads, |_, &x| x * x), expect);
        }
    }

    #[test]
    fn indices_match_items() {
        let items: Vec<usize> = (0..257).collect();
        let out = par_map(&items, 4, |i, &x| (i, x));
        assert!(out.iter().all(|&(i, x)| i == x));
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<u32> = par_map(&[] as &[u32], 8, |_, &x| x);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "boom 3")]
    fn worker_panics_propagate_with_payload() {
        let items: Vec<usize> = (0..16).collect();
        par_map(&items, 4, |_, &x| {
            if x == 3 {
                panic!("boom {x}");
            }
            x
        });
    }
}

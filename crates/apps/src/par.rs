//! Re-export of the scoped-thread parallel map, which now lives in the
//! [`gpp_par`] utility crate so that `gpp-core`'s analysis pipeline can
//! use the same primitive without inverting the workspace crate DAG.
//!
//! Historical callers keep working through this path: the study grid
//! fans out with `gpp_apps::par::par_map_traced`, exactly as before the
//! extraction. See [`gpp_par`] for the semantics (input-order results,
//! dynamic scheduling, panic propagation, per-worker `busy-ns`
//! counters when traced).

pub use gpp_par::{effective_threads, par_map, par_map_traced};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reexported_map_works_through_the_historical_path() {
        let items: Vec<u64> = (0..64).collect();
        let expect: Vec<u64> = items.iter().map(|x| x + 1).collect();
        assert_eq!(par_map(&items, 4, |_, &x| x + 1), expect);
        assert!(effective_threads(2) == 2);
    }
}

//! Kernel operation-count profiles shared by the applications.
//!
//! Each profile states what one generated kernel does per edge and per
//! node — the static knowledge the graph-DSL compiler has about its own
//! output. The numbers are representative operation counts for the kernel
//! archetypes of the IrGL suite; what matters to the study is that
//! different kernels stress the chips differently (atomic-heavy vs
//! memory-heavy vs ALU-heavy).

use gpp_sim::exec::KernelProfile;

/// Worklist frontier expansion with a visited-check CAS per edge
/// (worklist BFS flavours).
pub fn frontier_push(name: &str) -> KernelProfile {
    KernelProfile {
        name: name.to_owned(),
        alu_per_edge: 4.0,
        reads_per_edge: 1.2,
        writes_per_edge: 0.3,
        atomics_per_edge: 0.4,
        alu_per_node: 6.0,
        reads_per_node: 2.0,
        writes_per_node: 1.0,
        irregular: true,
    }
}

/// Duplicate-tolerant frontier expansion: no per-edge CAS, cheaper edges.
pub fn frontier_nodedup(name: &str) -> KernelProfile {
    KernelProfile {
        name: name.to_owned(),
        alu_per_edge: 3.0,
        reads_per_edge: 1.2,
        writes_per_edge: 0.5,
        atomics_per_edge: 0.0,
        alu_per_node: 5.0,
        reads_per_node: 2.0,
        writes_per_node: 1.0,
        irregular: true,
    }
}

/// Topology-driven scan: every node checks activity, active ones walk
/// their edges (level BFS, label propagation, Bellman-Ford).
pub fn topology_scan(name: &str) -> KernelProfile {
    KernelProfile {
        name: name.to_owned(),
        alu_per_edge: 3.0,
        reads_per_edge: 1.0,
        writes_per_edge: 0.3,
        atomics_per_edge: 0.0,
        alu_per_node: 4.0,
        reads_per_node: 2.0,
        writes_per_node: 0.5,
        irregular: true,
    }
}

/// Edge relaxation with an atomic-min per improving edge (SSSP).
pub fn relax(name: &str) -> KernelProfile {
    KernelProfile {
        name: name.to_owned(),
        alu_per_edge: 5.0,
        reads_per_edge: 1.5,
        writes_per_edge: 0.0,
        atomics_per_edge: 1.0,
        alu_per_node: 5.0,
        reads_per_node: 2.0,
        writes_per_node: 0.5,
        irregular: true,
    }
}

/// Pull-style rank accumulation (PR pull): read neighbour ranks, no
/// atomics.
pub fn rank_pull(name: &str) -> KernelProfile {
    KernelProfile {
        name: name.to_owned(),
        alu_per_edge: 4.0,
        reads_per_edge: 2.0,
        writes_per_edge: 0.0,
        atomics_per_edge: 0.0,
        alu_per_node: 8.0,
        reads_per_node: 2.0,
        writes_per_node: 1.0,
        irregular: true,
    }
}

/// Push-style rank scatter (PR push): one atomic add per edge.
pub fn rank_push(name: &str) -> KernelProfile {
    KernelProfile {
        name: name.to_owned(),
        alu_per_edge: 3.0,
        reads_per_edge: 0.5,
        writes_per_edge: 0.0,
        atomics_per_edge: 1.0,
        alu_per_node: 6.0,
        reads_per_node: 2.0,
        writes_per_node: 1.0,
        irregular: true,
    }
}

/// Priority comparison against neighbours (MIS selection).
pub fn priority_select(name: &str) -> KernelProfile {
    KernelProfile {
        name: name.to_owned(),
        alu_per_edge: 4.0,
        reads_per_edge: 1.0,
        writes_per_edge: 0.0,
        atomics_per_edge: 0.0,
        alu_per_node: 7.0,
        reads_per_node: 1.5,
        writes_per_node: 1.0,
        irregular: true,
    }
}

/// Minimum outgoing-edge scan per component (Borůvka).
pub fn min_edge_scan(name: &str) -> KernelProfile {
    KernelProfile {
        name: name.to_owned(),
        alu_per_edge: 5.0,
        reads_per_edge: 1.5,
        writes_per_edge: 0.0,
        atomics_per_edge: 0.5,
        alu_per_node: 5.0,
        reads_per_node: 2.0,
        writes_per_node: 0.5,
        irregular: true,
    }
}

/// Node-local pointer jumping / hooking (no edge loop).
pub fn pointer_jump(name: &str) -> KernelProfile {
    KernelProfile {
        name: name.to_owned(),
        alu_per_edge: 2.0,
        reads_per_edge: 1.0,
        writes_per_edge: 0.5,
        atomics_per_edge: 0.0,
        alu_per_node: 4.0,
        reads_per_node: 2.0,
        writes_per_node: 1.0,
        irregular: false,
    }
}

/// One pass of a device merge/bitonic sort over keyed records.
pub fn sort_pass(name: &str) -> KernelProfile {
    KernelProfile {
        name: name.to_owned(),
        alu_per_edge: 0.0,
        reads_per_edge: 0.0,
        writes_per_edge: 0.0,
        atomics_per_edge: 0.0,
        alu_per_node: 6.0,
        reads_per_node: 2.0,
        writes_per_node: 2.0,
        irregular: false,
    }
}

/// Sorted-adjacency intersection (triangle counting); an "edge" here is
/// one merge comparison.
pub fn intersect(name: &str) -> KernelProfile {
    KernelProfile {
        name: name.to_owned(),
        alu_per_edge: 1.5,
        reads_per_edge: 0.2,
        writes_per_edge: 0.0,
        atomics_per_edge: 0.0,
        alu_per_node: 5.0,
        reads_per_node: 2.0,
        writes_per_node: 0.5,
        irregular: true,
    }
}

/// Compaction/filter pass over a raw worklist (no edge loop, one push per
/// surviving entry).
pub fn filter(name: &str) -> KernelProfile {
    KernelProfile {
        name: name.to_owned(),
        alu_per_edge: 0.0,
        reads_per_edge: 0.0,
        writes_per_edge: 0.0,
        atomics_per_edge: 0.0,
        alu_per_node: 4.0,
        reads_per_node: 1.5,
        writes_per_node: 0.5,
        irregular: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpp_sim::chip::ChipProfile;

    #[test]
    fn all_profiles_have_positive_costs() {
        let chip = ChipProfile::r9();
        for p in [
            frontier_push("a"),
            frontier_nodedup("b"),
            topology_scan("c"),
            relax("d"),
            rank_pull("e"),
            rank_push("f"),
            priority_select("g"),
            min_edge_scan("h"),
            pointer_jump("i"),
            sort_pass("j"),
            intersect("k"),
            filter("l"),
        ] {
            assert!(p.node_cost(&chip) > 0.0, "{}", p.name);
            assert!(p.edge_cost(&chip, 1.0) >= 0.0, "{}", p.name);
        }
    }

    #[test]
    fn atomic_heavy_kernels_cost_more_per_edge_on_atomic_weak_chips() {
        let chip = ChipProfile::mali();
        let plain = topology_scan("t").edge_cost(&chip, 1.0);
        let atomic = relax("r").edge_cost(&chip, 1.0);
        assert!(atomic > plain);
    }
}

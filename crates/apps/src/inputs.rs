//! The study's input graphs (paper Table VIII): one per structural class,
//! at three scales.

use gpp_graph::properties::InputClass;
use gpp_graph::{generators, Graph};

/// How large to make the study inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StudyScale {
    /// Full-size study (the default for benchmarks and EXPERIMENTS.md).
    Full,
    /// Reduced study for integration tests.
    Small,
    /// Minimal study for fast unit tests.
    Tiny,
}

/// One named study input.
#[derive(Debug, Clone)]
pub struct StudyInput {
    /// Input name used in the dataset (e.g. `"road"`).
    pub name: String,
    /// The structural class the input represents.
    pub class: InputClass,
    /// The graph itself.
    pub graph: Graph,
}

/// Builds the three study inputs at the requested scale. Deterministic in
/// `seed`.
///
/// - `road`: grid road network (the `usa.ny` analogue): high diameter,
///   low uniform degree;
/// - `social`: R-MAT power-law graph: low diameter, heavy-tailed degrees;
/// - `random`: uniform random graph: low diameter, concentrated degrees.
///
/// # Panics
///
/// Panics only if the built-in generator parameters are invalid, which
/// would be a bug.
pub fn study_inputs(scale: StudyScale, seed: u64) -> Vec<StudyInput> {
    let (road_side, rmat_scale, rmat_ef, rand_n, rand_deg) = scale_params(scale);
    vec![
        StudyInput {
            name: "road".to_owned(),
            class: InputClass::Road,
            graph: generators::road_grid(road_side, road_side, seed)
                .expect("road generator parameters are valid"),
        },
        StudyInput {
            name: "social".to_owned(),
            class: InputClass::Social,
            graph: generators::rmat(rmat_scale, rmat_ef, seed)
                .expect("rmat generator parameters are valid"),
        },
        StudyInput {
            name: "random".to_owned(),
            class: InputClass::Random,
            graph: generators::uniform_random(rand_n, rand_deg, seed)
                .expect("random generator parameters are valid"),
        },
    ]
}

fn scale_params(scale: StudyScale) -> (usize, u32, usize, usize, f64) {
    match scale {
        StudyScale::Full => (96, 12, 8, 8_192, 8.0),
        StudyScale::Small => (24, 10, 8, 1_024, 8.0),
        StudyScale::Tiny => (8, 7, 4, 128, 6.0),
    }
}

/// An extended input set with *two* graphs per structural class, for
/// studies that stress the input dimension beyond the paper's minimum:
///
/// - `road` (square grid) and `road.wide` (elongated grid: same class,
///   different diameter/width mix);
/// - `social` (R-MAT) and `social.ba` (Barabási–Albert: same power-law
///   class, different generative model);
/// - `random` and `random.dense` (double the average degree).
///
/// Deterministic in `seed`; the first graph of each class equals the
/// corresponding [`study_inputs`] graph.
pub fn study_inputs_extended(scale: StudyScale, seed: u64) -> Vec<StudyInput> {
    let (road_side, rmat_scale, rmat_ef, rand_n, rand_deg) = scale_params(scale);
    let mut inputs = study_inputs(scale, seed);
    inputs.push(StudyInput {
        name: "road.wide".to_owned(),
        class: InputClass::Road,
        graph: generators::road_grid(road_side * 2, (road_side / 2).max(2), seed ^ 0x77)
            .expect("road generator parameters are valid"),
    });
    inputs.push(StudyInput {
        name: "social.ba".to_owned(),
        class: InputClass::Social,
        graph: generators::barabasi_albert(1 << rmat_scale, (rmat_ef / 2).max(2), seed ^ 0x77)
            .expect("barabasi-albert generator parameters are valid"),
    });
    inputs.push(StudyInput {
        name: "random.dense".to_owned(),
        class: InputClass::Random,
        graph: generators::uniform_random(rand_n, rand_deg * 2.0, seed ^ 0x77)
            .expect("random generator parameters are valid"),
    });
    inputs
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpp_graph::properties;

    #[test]
    fn three_inputs_with_expected_names() {
        let inputs = study_inputs(StudyScale::Tiny, 1);
        let names: Vec<&str> = inputs.iter().map(|i| i.name.as_str()).collect();
        assert_eq!(names, ["road", "social", "random"]);
    }

    #[test]
    fn full_inputs_classify_as_declared() {
        for input in study_inputs(StudyScale::Full, 42) {
            assert_eq!(
                properties::classify(&input.graph),
                input.class,
                "{}",
                input.name
            );
        }
    }

    #[test]
    fn small_inputs_are_smaller_than_full() {
        let full = study_inputs(StudyScale::Full, 1);
        let small = study_inputs(StudyScale::Small, 1);
        for (f, s) in full.iter().zip(&small) {
            assert!(s.graph.num_nodes() < f.graph.num_nodes(), "{}", f.name);
        }
    }

    #[test]
    fn inputs_are_deterministic_in_seed() {
        let a = study_inputs(StudyScale::Small, 7);
        let b = study_inputs(StudyScale::Small, 7);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.graph, y.graph);
        }
        let c = study_inputs(StudyScale::Small, 8);
        assert_ne!(a[1].graph, c[1].graph);
    }

    #[test]
    fn extended_inputs_double_each_class() {
        let inputs = study_inputs_extended(StudyScale::Tiny, 3);
        assert_eq!(inputs.len(), 6);
        for class in [InputClass::Road, InputClass::Social, InputClass::Random] {
            assert_eq!(
                inputs.iter().filter(|i| i.class == class).count(),
                2,
                "{class}"
            );
        }
        // The base three are unchanged.
        let base = study_inputs(StudyScale::Tiny, 3);
        for (a, b) in base.iter().zip(&inputs) {
            assert_eq!(a.graph, b.graph);
        }
        // Names are unique.
        let mut names: Vec<&str> = inputs.iter().map(|i| i.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 6);
    }

    #[test]
    fn extended_inputs_classify_as_declared_at_small_scale() {
        for input in study_inputs_extended(StudyScale::Small, 42) {
            assert_eq!(
                properties::classify(&input.graph),
                input.class,
                "{}",
                input.name
            );
        }
    }

    #[test]
    fn road_has_much_higher_diameter_than_social() {
        let inputs = study_inputs(StudyScale::Small, 3);
        let road = properties::estimate_diameter(&inputs[0].graph);
        let social = properties::estimate_diameter(&inputs[1].graph);
        assert!(road > 3 * social, "road {road} vs social {social}");
    }

    #[test]
    fn social_has_much_higher_degree_skew() {
        let inputs = study_inputs(StudyScale::Small, 3);
        let social = properties::degree_stats(&inputs[1].graph);
        let random = properties::degree_stats(&inputs[2].graph);
        assert!(social.cv > 2.0 * random.cv);
    }
}

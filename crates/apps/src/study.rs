//! The experiment grid: run every application on every input, replay on
//! every chip under every optimisation configuration, and collect the
//! timing dataset the paper's analysis consumes.
//!
//! One *cell* of the dataset is an (application, input, chip) tuple with
//! `runs` noisy timings for each of the 96 configurations — the paper's
//! 306-tuple, ~88k-measurement dataset (Section VI-D), regenerated
//! deterministically from a seed.
//!
//! # Concurrency
//!
//! The grid is embarrassingly parallel and [`run_study_on`] exploits
//! that: trace collection fans out over (input, application) pairs and
//! pricing fans out over (trace, chip) cells, both via
//! [`crate::par::par_map_pooled_traced`] — the persistent worker pool,
//! so a study's many fan-outs share one set of long-lived threads
//! instead of re-spawning per phase. Timing noise is seeded per (cell,
//! configuration, run), so the result is a pure function of
//! [`StudyConfig`] regardless of thread count — a parallel study is
//! byte-identical to a single-threaded one. [`run_study_traced`]
//! additionally emits pipeline spans and counters through a
//! [`gpp_obs::Tracer`]; tracing never changes the dataset.
//! [`run_study_cached`] adds a persistent [`TraceCache`], so a warm run
//! skips the `collect-traces` phase entirely — still byte-identical.

use std::collections::HashMap;
use std::io::{BufReader, BufWriter};
use std::path::Path;
use std::sync::{Arc, OnceLock};

use gpp_graph::rng::Rng64;
use gpp_sim::chip::study_chips;
use gpp_sim::exec::Machine;
use gpp_sim::opts::{OptConfig, NUM_CONFIGS};
use gpp_sim::trace::{CompiledTrace, Recorder};
use gpp_obs::metrics;
use gpp_obs::Tracer;
use serde::{Deserialize, Serialize};

use crate::app::validate;
use crate::apps::all_applications;
use crate::cache::TraceCache;
use crate::inputs::{study_inputs, study_inputs_extended, StudyScale};
use crate::par::par_map_pooled_traced;

/// Parameters of a study run.
#[derive(Debug, Clone, Copy)]
pub struct StudyConfig {
    /// Input scale.
    pub scale: StudyScale,
    /// Seed for input generation and timing noise.
    pub seed: u64,
    /// Repetitions per (cell, configuration) — the paper used 3.
    pub runs: usize,
    /// Log-normal sigma of multiplicative timing noise.
    pub noise_sigma: f64,
    /// Whether to validate every application output against the
    /// sequential references while collecting (recommended).
    pub validate: bool,
    /// Use the extended input set (two graphs per class) instead of the
    /// paper's one-per-class minimum.
    pub extended_inputs: bool,
    /// Worker threads for the grid. `0` (the default) picks the
    /// `GPP_STUDY_THREADS` environment variable if set, otherwise the
    /// machine's available parallelism; `1` forces a serial run. The
    /// dataset does not depend on this value.
    pub threads: usize,
    /// Append the seven DSL programs ([`crate::dsl::dsl_applications`],
    /// bytecode-compiled once per study) to the 17 handwritten
    /// applications. Off by default, so the standard dataset is
    /// unchanged.
    pub dsl_programs: bool,
}

impl Default for StudyConfig {
    fn default() -> Self {
        StudyConfig {
            scale: StudyScale::Full,
            seed: 0x9a7e_2019,
            runs: 3,
            noise_sigma: 0.015,
            validate: true,
            extended_inputs: false,
            threads: 0,
            dsl_programs: false,
        }
    }
}

impl StudyConfig {
    /// A reduced configuration for integration tests.
    pub fn small() -> Self {
        StudyConfig {
            scale: StudyScale::Small,
            ..StudyConfig::default()
        }
    }

    /// A minimal configuration for unit tests.
    pub fn tiny() -> Self {
        StudyConfig {
            scale: StudyScale::Tiny,
            ..StudyConfig::default()
        }
    }

    /// The worker-thread count a study run will actually use
    /// (see [`gpp_par::effective_threads`]).
    pub fn effective_threads(&self) -> usize {
        crate::par::effective_threads(self.threads)
    }
}

/// Memoized per-cell statistics: per-configuration medians and the
/// best-configuration index, computed once on first use.
#[derive(Debug, Clone)]
struct CellCache {
    medians: Vec<f64>,
    best: usize,
}

/// One (application, input, chip) tuple's timings.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Cell {
    /// Application name.
    pub app: String,
    /// Input name.
    pub input: String,
    /// Chip name.
    pub chip: String,
    /// `times[config_index][run]`, nanoseconds;
    /// `config_index` follows [`OptConfig::index`].
    pub times: Vec<Vec<f64>>,
    // Lazily built; never serialised or compared.
    #[serde(skip)]
    cache: OnceLock<CellCache>,
}

impl PartialEq for Cell {
    fn eq(&self, other: &Self) -> bool {
        self.app == other.app
            && self.input == other.input
            && self.chip == other.chip
            && self.times == other.times
    }
}

impl Cell {
    /// Builds a cell from its timings.
    pub fn new(app: String, input: String, chip: String, times: Vec<Vec<f64>>) -> Self {
        Cell {
            app,
            input,
            chip,
            times,
            cache: OnceLock::new(),
        }
    }

    fn cache(&self) -> &CellCache {
        let cache = self.cache.get_or_init(|| {
            let medians: Vec<f64> = self.times.iter().map(|runs| median_of(runs)).collect();
            // `min_by` keeps the *first* minimum on ties, matching the
            // historical `(0..NUM_CONFIGS).min_by(...)` scan exactly.
            let best = (0..medians.len())
                .min_by(|&a, &b| {
                    medians[a]
                        .partial_cmp(&medians[b])
                        .expect("times are finite")
                })
                .expect("non-empty configuration space");
            CellCache { medians, best }
        });
        // The cache is serde-skipped and only sound while `times` is
        // frozen; mutate through `times_mut` (which invalidates it), not
        // the public field.
        debug_assert!(
            cache.medians.len() == self.times.len()
                && self
                    .times
                    .first()
                    .is_none_or(|runs| cache.medians[0] == median_of(runs)),
            "stale Cell cache: `times` mutated after memoization; use times_mut()"
        );
        cache
    }

    /// Mutable access to the timings, invalidating the memoized
    /// statistics so later [`Cell::median`]/[`Cell::best_config`] calls
    /// recompute from the new values. Always mutate through this rather
    /// than the public `times` field once statistics have been read.
    pub fn times_mut(&mut self) -> &mut Vec<Vec<f64>> {
        self.cache = OnceLock::new();
        &mut self.times
    }

    /// The runs for one configuration.
    ///
    /// # Panics
    ///
    /// Panics if `config` is out of range.
    pub fn runs(&self, config: OptConfig) -> &[f64] {
        &self.times[config.index()]
    }

    /// Median runtime for one configuration (memoized).
    ///
    /// # Panics
    ///
    /// Panics if `config` is out of range.
    pub fn median(&self, config: OptConfig) -> f64 {
        self.cache().medians[config.index()]
    }

    /// Median runtimes for all configurations, indexed by
    /// [`OptConfig::index`] (memoized).
    pub fn medians(&self) -> &[f64] {
        &self.cache().medians
    }

    /// The configuration with the smallest median runtime — the oracle
    /// choice for this cell.
    pub fn best_config(&self) -> OptConfig {
        OptConfig::from_index(self.cache().best)
    }

    /// Speedup of `config` over the baseline (medians; > 1 is faster).
    pub fn speedup(&self, config: OptConfig) -> f64 {
        self.median(OptConfig::baseline()) / self.median(config)
    }
}

/// The full study dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dataset {
    /// Application names, in registry order.
    pub apps: Vec<String>,
    /// Input names.
    pub inputs: Vec<String>,
    /// Chip names, in Table I order.
    pub chips: Vec<String>,
    /// Repetitions per (cell, configuration).
    pub runs: usize,
    /// One cell per (application, input, chip), iteration order
    /// input-major, then application, then chip.
    pub cells: Vec<Cell>,
    // (app, input, chip) -> cells index; lazily built, never serialised.
    #[serde(skip)]
    index: OnceLock<HashMap<String, usize>>,
}

impl PartialEq for Dataset {
    fn eq(&self, other: &Self) -> bool {
        self.apps == other.apps
            && self.inputs == other.inputs
            && self.chips == other.chips
            && self.runs == other.runs
            && self.cells == other.cells
    }
}

impl Dataset {
    /// Builds a dataset from its parts.
    pub fn new(
        apps: Vec<String>,
        inputs: Vec<String>,
        chips: Vec<String>,
        runs: usize,
        cells: Vec<Cell>,
    ) -> Self {
        Dataset {
            apps,
            inputs,
            chips,
            runs,
            cells,
            index: OnceLock::new(),
        }
    }

    fn key(app: &str, input: &str, chip: &str) -> String {
        format!("{app}\0{input}\0{chip}")
    }

    fn index(&self) -> &HashMap<String, usize> {
        let index = self.index.get_or_init(|| {
            let mut map = HashMap::with_capacity(self.cells.len());
            for (i, c) in self.cells.iter().enumerate() {
                // First match wins, like a linear scan would.
                map.entry(Self::key(&c.app, &c.input, &c.chip)).or_insert(i);
            }
            map
        });
        // The index is serde-skipped and only sound while `cells` is
        // frozen; mutate through `cells_mut` (which invalidates it), not
        // the public field.
        debug_assert!(
            index.len() <= self.cells.len()
                && self
                    .cells
                    .last()
                    .is_none_or(|c| index.contains_key(&Self::key(&c.app, &c.input, &c.chip))),
            "stale Dataset index: `cells` mutated after memoization; use cells_mut()"
        );
        index
    }

    /// Mutable access to the cells, invalidating the memoized lookup
    /// index so later [`Dataset::cell`]/[`Dataset::cell_index`] calls
    /// rebuild it. Always mutate through this rather than the public
    /// `cells` field once a lookup has been made.
    pub fn cells_mut(&mut self) -> &mut Vec<Cell> {
        self.index = OnceLock::new();
        &mut self.cells
    }

    /// The position of one cell in [`Dataset::cells`], via the prebuilt
    /// index (O(1) after the first lookup).
    pub fn cell_index(&self, app: &str, input: &str, chip: &str) -> Option<usize> {
        self.index().get(&Self::key(app, input, chip)).copied()
    }

    /// Looks up one cell.
    pub fn cell(&self, app: &str, input: &str, chip: &str) -> Option<&Cell> {
        self.cell_index(app, input, chip).map(|i| &self.cells[i])
    }

    /// All cells restricted by optional dimension filters.
    pub fn select<'a>(
        &'a self,
        app: Option<&'a str>,
        input: Option<&'a str>,
        chip: Option<&'a str>,
    ) -> impl Iterator<Item = &'a Cell> + 'a {
        self.cells.iter().filter(move |c| {
            app.is_none_or(|a| c.app == a)
                && input.is_none_or(|i| c.input == i)
                && chip.is_none_or(|h| c.chip == h)
        })
    }

    /// Serialises the dataset as JSON to `path`.
    ///
    /// # Errors
    ///
    /// Propagates I/O and serialisation failures.
    pub fn save_json(&self, path: &Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let file = std::fs::File::create(path)?;
        serde_json::to_writer(BufWriter::new(file), self)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// Loads a dataset saved by [`Dataset::save_json`].
    ///
    /// # Errors
    ///
    /// Propagates I/O and deserialisation failures.
    pub fn load_json(path: &Path) -> std::io::Result<Dataset> {
        let file = std::fs::File::open(path)?;
        serde_json::from_reader(BufReader::new(file))
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

/// Runs the full grid and collects the dataset.
///
/// Each (application, input) pair is executed once against a trace
/// recorder — validating the computed result against the sequential
/// references when `config.validate` is set — and the trace is then
/// replayed on every chip under all 96 configurations in one batched
/// traversal per geometry. Timing noise is log-normal, seeded per (cell,
/// configuration, run), so the dataset is a pure function of `config`
/// regardless of `config.threads`.
///
/// # Panics
///
/// Panics if an application produces an incorrect result (with
/// `config.validate`), or if `config.runs` is zero.
pub fn run_study(config: &StudyConfig) -> Dataset {
    run_study_on(config, &study_chips())
}

/// [`run_study`] over a custom chip set — used by robustness experiments
/// that perturb the chip models, and by studies of hypothetical devices.
///
/// # Panics
///
/// Panics as [`run_study`] does, or if `chips` is empty or contains
/// duplicate names.
pub fn run_study_on(config: &StudyConfig, chips: &[gpp_sim::chip::ChipProfile]) -> Dataset {
    run_study_traced(config, chips, &Tracer::disabled())
}

/// [`run_study_on`] with pipeline tracing: emits a `study` span over the
/// whole run, a `phase` span per pipeline phase (`collect-traces`,
/// `price-cells`), a `trace`/`cell` span per work item, per-worker
/// `busy-ns` counters, and one `traces-compiled`/`cells-priced` counter
/// increment per item, all through `tracer`.
///
/// With a disabled tracer this *is* [`run_study_on`] — no timestamps are
/// taken and no labels are formatted. The dataset is byte-identical with
/// tracing on or off, at any thread count.
///
/// # Panics
///
/// Panics as [`run_study_on`] does.
pub fn run_study_traced(
    config: &StudyConfig,
    chips: &[gpp_sim::chip::ChipProfile],
    tracer: &Tracer,
) -> Dataset {
    run_study_cached(config, chips, tracer, None)
}

/// [`run_study_traced`] with a persistent [`TraceCache`]: each
/// (application, input) trace is looked up in `cache` before being
/// recorded, and freshly recorded traces are stored back. On a warm
/// cache the `collect-traces` phase runs no application at all — the
/// `traces-compiled` counter stays at zero and only `trace-cache-hits`
/// increments. The dataset is byte-identical with or without a cache
/// (cold or warm): the on-disk JSON round-trip is exact.
///
/// Cache hits skip output validation (`config.validate`) along with the
/// run that would produce the output — a cached trace was validated
/// when it was recorded.
///
/// # Panics
///
/// Panics as [`run_study_on`] does.
pub fn run_study_cached(
    config: &StudyConfig,
    chips: &[gpp_sim::chip::ChipProfile],
    tracer: &Tracer,
    cache: Option<&TraceCache>,
) -> Dataset {
    assert!(config.runs > 0, "need at least one run per measurement");
    assert!(!chips.is_empty(), "need at least one chip");
    {
        let mut names: Vec<&str> = chips.iter().map(|c| c.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), chips.len(), "chip names must be unique");
    }
    // The study span opens before input generation so the top-level
    // phase spans (`generate-inputs`, `collect-traces`, `price-cells`,
    // `finalize`) tile its wall time — `gpp profile` checks that the
    // root is within a few percent of the sum of its phases.
    let _study_span = tracer.span("study");
    let (inputs, apps) = {
        let _phase = tracer.span_detail("phase", Some("generate-inputs".to_owned()));
        let inputs = if config.extended_inputs {
            study_inputs_extended(config.scale, config.seed)
        } else {
            study_inputs(config.scale, config.seed)
        };
        let mut apps = all_applications();
        if config.dsl_programs {
            // Each DslApp compiles its program to bytecode exactly once —
            // the OnceLock is shared across inputs and worker threads.
            apps.extend(crate::dsl::dsl_applications());
        }
        (inputs, apps)
    };
    // The fan-out state lives in `Arc`s so both phases can run on the
    // persistent worker pool (pooled jobs must be `'static`).
    let config = *config;
    let inputs = Arc::new(inputs);
    let apps = Arc::new(apps);
    let chips = chips.to_vec();
    let machines: Arc<Vec<Machine>> =
        Arc::new(chips.iter().cloned().map(Machine::new).collect());
    let threads = config.effective_threads();

    // Phase 1: one trace per (input, application) pair, input-major —
    // loaded from the cache when possible, recorded (and stored back)
    // otherwise. Precompiling here builds every geometry's aggregation
    // up front in one pass over the trace arena, so phase 2 replays
    // never build.
    let pairs: Arc<Vec<(usize, usize)>> = Arc::new(
        (0..inputs.len())
            .flat_map(|i| (0..apps.len()).map(move |a| (i, a)))
            .collect(),
    );
    let traces: Arc<Vec<CompiledTrace>> = {
        let _phase = tracer.span_detail("phase", Some("collect-traces".to_owned()));
        let inputs = Arc::clone(&inputs);
        let apps = Arc::clone(&apps);
        let machines = Arc::clone(&machines);
        let cache = cache.cloned();
        let job_tracer = tracer.clone();
        let traces = par_map_pooled_traced(&pairs, threads, tracer, "collect-traces", move |_, &(i, a)| {
            let tracer = &job_tracer;
            let cache = cache.as_ref();
            let (input, app) = (&inputs[i], &apps[a]);
            // Expensive label formatting only when someone is listening.
            let _item = tracer
                .is_enabled()
                .then(|| tracer.span_detail("trace", Some(format!("{}/{}", app.name(), input.name))));
            let cached = cache.and_then(|c| c.load(app.name(), app.content_version(), input, config.scale, config.seed));
            let trace = match cached {
                Some(trace) => {
                    tracer.counter("trace-cache-hits", None, 1.0);
                    trace
                }
                None => {
                    let mut recorder = Recorder::new();
                    let output = app.run(&input.graph, &mut recorder);
                    if config.validate {
                        if let Err(e) = validate(&input.graph, &output) {
                            panic!("{} on {}: {e}", app.name(), input.name);
                        }
                    }
                    let trace = recorder.into_trace();
                    if let Some(c) = cache {
                        tracer.counter("trace-cache-misses", None, 1.0);
                        c.store(app.name(), app.content_version(), input, config.scale, config.seed, &trace);
                    }
                    tracer.counter("traces-compiled", None, 1.0);
                    metrics::counter("study.traces_compiled", 1);
                    trace
                }
            };
            let compiled = CompiledTrace::new(trace);
            compiled.precompile_all(&machines);
            compiled
        });
        Arc::new(traces)
    };

    // Phase 2: price each (trace, chip) cell — all 96 configurations in
    // one traversal — and apply the seeded noise. Cell order matches the
    // historical serial loop: input-major, then application, then chip.
    let cell_ids: Arc<Vec<(usize, usize)>> = Arc::new(
        (0..pairs.len())
            .flat_map(|p| (0..machines.len()).map(move |m| (p, m)))
            .collect(),
    );
    let cells: Vec<Cell> = {
        let _phase = tracer.span_detail("phase", Some("price-cells".to_owned()));
        let pairs = Arc::clone(&pairs);
        let inputs = Arc::clone(&inputs);
        let apps = Arc::clone(&apps);
        let machines = Arc::clone(&machines);
        let traces = Arc::clone(&traces);
        let job_tracer = tracer.clone();
        par_map_pooled_traced(&cell_ids, threads, tracer, "price-cells", move |_, &(p, m)| {
            let tracer = &job_tracer;
            let (i, a) = pairs[p];
            let machine = &machines[m];
            let _item = tracer.is_enabled().then(|| {
                tracer.span_detail(
                    "cell",
                    Some(format!(
                        "{}/{}/{}",
                        apps[a].name(),
                        inputs[i].name,
                        machine.chip().name
                    )),
                )
            });
            let priced_at = metrics::start();
            let priced = traces[p].replay_all_configs(machine);
            let times: Vec<Vec<f64>> = (0..NUM_CONFIGS)
                .map(|idx| {
                    let base = priced[idx].time_ns;
                    let mut rng = noise_rng(
                        config.seed,
                        apps[a].name(),
                        &inputs[i].name,
                        &machine.chip().name,
                        idx,
                    );
                    (0..config.runs)
                        .map(|_| base * rng.next_log_normal(0.0, config.noise_sigma))
                        .collect()
                })
                .collect();
            tracer.counter("cells-priced", None, 1.0);
            metrics::counter("study.cells_priced", 1);
            metrics::observe_since("study.cell_price_ns", priced_at);
            Cell::new(
                apps[a].name().to_owned(),
                inputs[i].name.clone(),
                machine.chip().name.clone(),
                times,
            )
        })
    };

    let _finalize = tracer.span_detail("phase", Some("finalize".to_owned()));
    Dataset::new(
        apps.iter().map(|a| a.name().to_owned()).collect(),
        inputs.iter().map(|i| i.name.clone()).collect(),
        chips.iter().map(|c| c.name.clone()).collect(),
        config.runs,
        cells,
    )
}

/// Median of one configuration's runs (selection, not a full sort).
fn median_of(runs: &[f64]) -> f64 {
    let mut v = runs.to_vec();
    let mid = v.len() / 2;
    let (_, m, _) =
        v.select_nth_unstable_by(mid, |a, b| a.partial_cmp(b).expect("times are finite"));
    *m
}

/// Derives the per-(cell, configuration) noise stream.
fn noise_rng(seed: u64, app: &str, input: &str, chip: &str, config_index: usize) -> Rng64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
    for byte in app
        .bytes()
        .chain([0])
        .chain(input.bytes())
        .chain([0])
        .chain(chip.bytes())
        .chain([0])
        .chain((config_index as u32).to_le_bytes())
    {
        h ^= byte as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    Rng64::new(seed ^ h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpp_sim::opts::Optimization;

    fn tiny_dataset() -> Dataset {
        run_study(&StudyConfig::tiny())
    }

    #[test]
    fn tiny_study_has_full_grid() {
        let ds = tiny_dataset();
        assert_eq!(ds.apps.len(), 17);
        assert_eq!(ds.inputs.len(), 3);
        assert_eq!(ds.chips.len(), 6);
        assert_eq!(ds.cells.len(), 17 * 3 * 6);
        for cell in &ds.cells {
            assert_eq!(cell.times.len(), NUM_CONFIGS);
            assert!(cell.times.iter().all(|r| r.len() == 3));
            assert!(cell
                .times
                .iter()
                .flatten()
                .all(|&t| t.is_finite() && t > 0.0));
        }
    }

    #[test]
    fn dsl_programs_extend_the_grid_deterministically() {
        let cfg = StudyConfig {
            dsl_programs: true,
            ..StudyConfig::tiny()
        };
        let ds = run_study(&cfg);
        assert_eq!(ds.apps.len(), 17 + 7);
        assert_eq!(ds.cells.len(), 24 * 3 * 6);
        assert!(ds.apps.iter().filter(|a| a.starts_with("dsl-")).count() == 7);
        assert!(ds.cell("dsl-bfs-wl", "road", "MALI").is_some());
        // Deterministic, including in parallel.
        let again = run_study(&StudyConfig { threads: 4, ..cfg });
        assert_eq!(ds, again);
        // The handwritten prefix of the grid is untouched by the flag.
        let plain = run_study(&StudyConfig::tiny());
        assert_eq!(&ds.apps[..17], &plain.apps[..]);
        for cell in &plain.cells {
            assert_eq!(ds.cell(&cell.app, &cell.input, &cell.chip), Some(cell));
        }
    }

    #[test]
    fn extended_inputs_grow_the_grid() {
        let ds = run_study(&StudyConfig {
            extended_inputs: true,
            ..StudyConfig::tiny()
        });
        assert_eq!(ds.inputs.len(), 6);
        assert_eq!(ds.cells.len(), 17 * 6 * 6);
    }

    #[test]
    fn study_is_deterministic() {
        let a = run_study(&StudyConfig::tiny());
        let b = run_study(&StudyConfig::tiny());
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_study_matches_single_threaded_exactly() {
        let serial = run_study(&StudyConfig {
            threads: 1,
            ..StudyConfig::tiny()
        });
        let parallel = run_study(&StudyConfig {
            threads: 4,
            ..StudyConfig::tiny()
        });
        assert_eq!(serial, parallel);
        // Byte-identical, not just structurally equal.
        assert_eq!(
            serde_json::to_string(&serial).unwrap(),
            serde_json::to_string(&parallel).unwrap()
        );
    }

    #[test]
    fn different_seed_changes_times_not_shape() {
        let a = run_study(&StudyConfig::tiny());
        let b = run_study(&StudyConfig {
            seed: 1234,
            ..StudyConfig::tiny()
        });
        assert_eq!(a.cells.len(), b.cells.len());
        assert_ne!(a, b);
    }

    #[test]
    fn cell_lookup_and_median() {
        let ds = tiny_dataset();
        let cell = ds.cell("bfs-wl", "road", "MALI").expect("cell exists");
        let m = cell.median(OptConfig::baseline());
        let runs = cell.runs(OptConfig::baseline());
        assert!(runs.contains(&m));
        assert!(ds.cell("bfs-wl", "road", "NOPE").is_none());
    }

    #[test]
    fn cell_index_agrees_with_linear_scan() {
        let ds = tiny_dataset();
        for (i, cell) in ds.cells.iter().enumerate() {
            assert_eq!(ds.cell_index(&cell.app, &cell.input, &cell.chip), Some(i));
        }
        assert_eq!(ds.cell_index("bfs-wl", "road", "NOPE"), None);
    }

    #[test]
    fn memoized_medians_match_naive_sort() {
        let ds = tiny_dataset();
        for cell in ds.cells.iter().take(12) {
            for (idx, runs) in cell.times.iter().enumerate() {
                let mut v = runs.clone();
                v.sort_by(|a, b| a.partial_cmp(b).unwrap());
                let naive = v[v.len() / 2];
                assert_eq!(cell.median(OptConfig::from_index(idx)), naive);
                assert_eq!(cell.medians()[idx], naive);
            }
        }
    }

    #[test]
    fn best_config_ties_resolve_like_a_linear_min_scan() {
        // Constant times: every configuration ties, and `min_by` keeps
        // the first minimum — the memoized best must do the same.
        let times = vec![vec![1.0, 1.0, 1.0]; NUM_CONFIGS];
        let cell = Cell::new("a".into(), "i".into(), "c".into(), times);
        assert_eq!(cell.best_config(), OptConfig::from_index(0));

        // A tie below the rest resolves to its first member, exactly
        // like a linear `min_by` scan over the medians.
        let mut times = vec![vec![2.0, 2.0, 2.0]; NUM_CONFIGS];
        times[17] = vec![1.0, 1.0, 1.0];
        times[63] = vec![1.0, 1.0, 1.0];
        let cell = Cell::new("a".into(), "i".into(), "c".into(), times);
        assert_eq!(cell.best_config(), OptConfig::from_index(17));
    }

    #[test]
    fn select_filters_dimensions() {
        let ds = tiny_dataset();
        assert_eq!(ds.select(Some("tri"), None, None).count(), 3 * 6);
        assert_eq!(ds.select(None, Some("road"), None).count(), 17 * 6);
        assert_eq!(ds.select(None, None, Some("R9")).count(), 17 * 3);
        assert_eq!(ds.select(Some("tri"), Some("road"), Some("R9")).count(), 1);
    }

    #[test]
    fn noise_is_small_and_multiplicative() {
        let ds = tiny_dataset();
        for cell in ds.cells.iter().take(20) {
            for runs in &cell.times {
                let mean = runs.iter().sum::<f64>() / runs.len() as f64;
                for &t in runs {
                    assert!((t / mean - 1.0).abs() < 0.2, "noise too large: {runs:?}");
                }
            }
        }
    }

    #[test]
    fn oitergb_helps_mali_road_bfs() {
        // A smoke test of the paper's central mechanism at tiny scale.
        let ds = tiny_dataset();
        let cell = ds.cell("bfs-wl", "road", "MALI").expect("cell exists");
        let speedup = cell.speedup(OptConfig::baseline().with(Optimization::Oitergb));
        assert!(
            speedup > 1.5,
            "oitergb speedup on MALI road bfs-wl: {speedup}"
        );
    }

    #[test]
    fn json_round_trip() {
        let ds = tiny_dataset();
        let dir = std::env::temp_dir().join("gpp-study-test");
        let path = dir.join("dataset.json");
        ds.save_json(&path).unwrap();
        let back = Dataset::load_json(&path).unwrap();
        assert_eq!(ds, back);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    #[should_panic(expected = "at least one run")]
    fn zero_runs_rejected() {
        run_study(&StudyConfig {
            runs: 0,
            ..StudyConfig::tiny()
        });
    }

    #[test]
    fn traced_study_is_byte_identical_to_untraced() {
        use gpp_obs::MemorySink;
        use std::sync::Arc;
        let plain = run_study(&StudyConfig::tiny());
        let sink = Arc::new(MemorySink::new());
        let tracer = gpp_obs::Tracer::new(sink.clone());
        let traced = run_study_traced(&StudyConfig::tiny(), &study_chips(), &tracer);
        assert_eq!(
            serde_json::to_string(&plain).unwrap(),
            serde_json::to_string(&traced).unwrap()
        );
        let events = sink.take();
        let compiled: f64 = events
            .iter()
            .filter(|e| e.name == "traces-compiled")
            .filter_map(|e| e.value)
            .sum();
        let priced: f64 = events
            .iter()
            .filter(|e| e.name == "cells-priced")
            .filter_map(|e| e.value)
            .sum();
        assert_eq!(compiled, (17 * 3) as f64);
        assert_eq!(priced, (17 * 3 * 6) as f64);
        // Every per-item span carries its work-item label.
        assert!(events
            .iter()
            .any(|e| e.name == "cell" && e.detail.as_deref() == Some("bfs-wl/road/MALI")));
    }

    #[test]
    fn cached_study_is_byte_identical_and_warm_runs_skip_collection() {
        use gpp_obs::MemorySink;
        use std::sync::Arc;
        let total = |events: &[gpp_obs::TraceEvent], name: &str| -> f64 {
            events
                .iter()
                .filter(|e| e.name == name)
                .filter_map(|e| e.value)
                .sum()
        };
        let dir = std::env::temp_dir().join(format!("gpp-study-cache-test-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let cache = TraceCache::new(&dir).unwrap();
        let plain = run_study(&StudyConfig::tiny());

        // Cold: every trace is a miss, recorded and stored.
        let sink = Arc::new(MemorySink::new());
        let cold = run_study_cached(
            &StudyConfig::tiny(),
            &study_chips(),
            &Tracer::new(sink.clone()),
            Some(&cache),
        );
        let events = sink.take();
        assert_eq!(total(&events, "trace-cache-hits"), 0.0);
        assert_eq!(total(&events, "trace-cache-misses"), (17 * 3) as f64);
        assert_eq!(total(&events, "traces-compiled"), (17 * 3) as f64);

        // Warm (and parallel): every trace is a hit, nothing is
        // recorded — the collect-traces phase runs no application.
        let sink = Arc::new(MemorySink::new());
        let warm = run_study_cached(
            &StudyConfig {
                threads: 4,
                ..StudyConfig::tiny()
            },
            &study_chips(),
            &Tracer::new(sink.clone()),
            Some(&cache),
        );
        let events = sink.take();
        assert_eq!(total(&events, "trace-cache-hits"), (17 * 3) as f64);
        assert_eq!(total(&events, "trace-cache-misses"), 0.0);
        assert_eq!(total(&events, "traces-compiled"), 0.0);

        // Cacheless, cold-cache, and warm-cache datasets are all
        // byte-identical.
        let baseline = serde_json::to_string(&plain).unwrap();
        assert_eq!(baseline, serde_json::to_string(&cold).unwrap());
        assert_eq!(baseline, serde_json::to_string(&warm).unwrap());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn times_mut_invalidates_memoized_stats() {
        let times = vec![vec![2.0, 2.0, 2.0]; NUM_CONFIGS];
        let mut cell = Cell::new("a".into(), "i".into(), "c".into(), times);
        assert_eq!(cell.median(OptConfig::baseline()), 2.0);
        cell.times_mut()[OptConfig::baseline().index()] = vec![5.0, 5.0, 5.0];
        assert_eq!(cell.median(OptConfig::baseline()), 5.0);
    }

    #[test]
    fn cells_mut_invalidates_index() {
        let mut ds = tiny_dataset();
        assert!(ds.cell("bfs-wl", "road", "MALI").is_some());
        ds.cells_mut().retain(|c| c.chip != "MALI");
        assert!(ds.cell("bfs-wl", "road", "MALI").is_none());
        assert!(ds.cell("bfs-wl", "road", "R9").is_some());
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "stale Cell cache")]
    fn stale_cell_cache_read_is_detected_in_debug() {
        let mut cell = Cell::new("a".into(), "i".into(), "c".into(), vec![vec![1.0]; 4]);
        let _ = cell.medians(); // populate the memo
        cell.times.push(vec![9.0]); // direct field mutation: cache now stale
        let _ = cell.medians();
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "stale Dataset index")]
    fn stale_dataset_index_read_is_detected_in_debug() {
        let mut ds = tiny_dataset();
        let _ = ds.cell_index("bfs-wl", "road", "MALI"); // populate the memo
        ds.cells.truncate(1); // direct field mutation: index now stale
        let _ = ds.cell_index("bfs-wl", "road", "MALI");
    }
}

//! The experiment grid: run every application on every input, replay on
//! every chip under every optimisation configuration, and collect the
//! timing dataset the paper's analysis consumes.
//!
//! One *cell* of the dataset is an (application, input, chip) tuple with
//! `runs` noisy timings for each of the 96 configurations — the paper's
//! 306-tuple, ~88k-measurement dataset (Section VI-D), regenerated
//! deterministically from a seed.

use std::io::{BufReader, BufWriter};
use std::path::Path;

use gpp_graph::rng::Rng64;
use gpp_sim::chip::study_chips;
use gpp_sim::exec::Machine;
use gpp_sim::opts::{OptConfig, NUM_CONFIGS};
use gpp_sim::trace::{CompiledTrace, Recorder};
use serde::{Deserialize, Serialize};

use crate::app::validate;
use crate::apps::all_applications;
use crate::inputs::{study_inputs, study_inputs_extended, StudyScale};

/// Parameters of a study run.
#[derive(Debug, Clone, Copy)]
pub struct StudyConfig {
    /// Input scale.
    pub scale: StudyScale,
    /// Seed for input generation and timing noise.
    pub seed: u64,
    /// Repetitions per (cell, configuration) — the paper used 3.
    pub runs: usize,
    /// Log-normal sigma of multiplicative timing noise.
    pub noise_sigma: f64,
    /// Whether to validate every application output against the
    /// sequential references while collecting (recommended).
    pub validate: bool,
    /// Use the extended input set (two graphs per class) instead of the
    /// paper's one-per-class minimum.
    pub extended_inputs: bool,
}

impl Default for StudyConfig {
    fn default() -> Self {
        StudyConfig {
            scale: StudyScale::Full,
            seed: 0x9a7e_2019,
            runs: 3,
            noise_sigma: 0.015,
            validate: true,
            extended_inputs: false,
        }
    }
}

impl StudyConfig {
    /// A reduced configuration for integration tests.
    pub fn small() -> Self {
        StudyConfig {
            scale: StudyScale::Small,
            ..StudyConfig::default()
        }
    }

    /// A minimal configuration for unit tests.
    pub fn tiny() -> Self {
        StudyConfig {
            scale: StudyScale::Tiny,
            ..StudyConfig::default()
        }
    }
}

/// One (application, input, chip) tuple's timings.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cell {
    /// Application name.
    pub app: String,
    /// Input name.
    pub input: String,
    /// Chip name.
    pub chip: String,
    /// `times[config_index][run]`, nanoseconds;
    /// `config_index` follows [`OptConfig::index`].
    pub times: Vec<Vec<f64>>,
}

impl Cell {
    /// The runs for one configuration.
    ///
    /// # Panics
    ///
    /// Panics if `config` is out of range.
    pub fn runs(&self, config: OptConfig) -> &[f64] {
        &self.times[config.index()]
    }

    /// Median runtime for one configuration.
    ///
    /// # Panics
    ///
    /// Panics if `config` is out of range.
    pub fn median(&self, config: OptConfig) -> f64 {
        let mut v = self.times[config.index()].clone();
        v.sort_by(|a, b| a.partial_cmp(b).expect("times are finite"));
        v[v.len() / 2]
    }

    /// The configuration with the smallest median runtime — the oracle
    /// choice for this cell.
    pub fn best_config(&self) -> OptConfig {
        let best = (0..NUM_CONFIGS)
            .min_by(|&a, &b| {
                let (ca, cb) = (OptConfig::from_index(a), OptConfig::from_index(b));
                self.median(ca)
                    .partial_cmp(&self.median(cb))
                    .expect("times are finite")
            })
            .expect("non-empty configuration space");
        OptConfig::from_index(best)
    }

    /// Speedup of `config` over the baseline (medians; > 1 is faster).
    pub fn speedup(&self, config: OptConfig) -> f64 {
        self.median(OptConfig::baseline()) / self.median(config)
    }
}

/// The full study dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    /// Application names, in registry order.
    pub apps: Vec<String>,
    /// Input names.
    pub inputs: Vec<String>,
    /// Chip names, in Table I order.
    pub chips: Vec<String>,
    /// Repetitions per (cell, configuration).
    pub runs: usize,
    /// One cell per (application, input, chip), iteration order
    /// input-major, then application, then chip.
    pub cells: Vec<Cell>,
}

impl Dataset {
    /// Looks up one cell.
    pub fn cell(&self, app: &str, input: &str, chip: &str) -> Option<&Cell> {
        self.cells
            .iter()
            .find(|c| c.app == app && c.input == input && c.chip == chip)
    }

    /// All cells restricted by optional dimension filters.
    pub fn select<'a>(
        &'a self,
        app: Option<&'a str>,
        input: Option<&'a str>,
        chip: Option<&'a str>,
    ) -> impl Iterator<Item = &'a Cell> + 'a {
        self.cells.iter().filter(move |c| {
            app.is_none_or(|a| c.app == a)
                && input.is_none_or(|i| c.input == i)
                && chip.is_none_or(|h| c.chip == h)
        })
    }

    /// Serialises the dataset as JSON to `path`.
    ///
    /// # Errors
    ///
    /// Propagates I/O and serialisation failures.
    pub fn save_json(&self, path: &Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let file = std::fs::File::create(path)?;
        serde_json::to_writer(BufWriter::new(file), self)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// Loads a dataset saved by [`Dataset::save_json`].
    ///
    /// # Errors
    ///
    /// Propagates I/O and deserialisation failures.
    pub fn load_json(path: &Path) -> std::io::Result<Dataset> {
        let file = std::fs::File::open(path)?;
        serde_json::from_reader(BufReader::new(file))
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

/// Runs the full grid and collects the dataset.
///
/// Each (application, input) pair is executed once against a trace
/// recorder — validating the computed result against the sequential
/// references when `config.validate` is set — and the trace is then
/// replayed on every chip under all 96 configurations. Timing noise is
/// log-normal, seeded per (cell, configuration, run), so the dataset is a
/// pure function of `config`.
///
/// # Panics
///
/// Panics if an application produces an incorrect result (with
/// `config.validate`), or if `config.runs` is zero.
pub fn run_study(config: &StudyConfig) -> Dataset {
    run_study_on(config, &study_chips())
}

/// [`run_study`] over a custom chip set — used by robustness experiments
/// that perturb the chip models, and by studies of hypothetical devices.
///
/// # Panics
///
/// Panics as [`run_study`] does, or if `chips` is empty or contains
/// duplicate names.
pub fn run_study_on(config: &StudyConfig, chips: &[gpp_sim::chip::ChipProfile]) -> Dataset {
    assert!(config.runs > 0, "need at least one run per measurement");
    assert!(!chips.is_empty(), "need at least one chip");
    {
        let mut names: Vec<&str> = chips.iter().map(|c| c.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), chips.len(), "chip names must be unique");
    }
    let inputs = if config.extended_inputs {
        study_inputs_extended(config.scale, config.seed)
    } else {
        study_inputs(config.scale, config.seed)
    };
    let apps = all_applications();
    let chips = chips.to_vec();
    let machines: Vec<Machine> = chips.iter().cloned().map(Machine::new).collect();

    let mut cells = Vec::with_capacity(inputs.len() * apps.len() * chips.len());
    for input in &inputs {
        for app in &apps {
            let mut recorder = Recorder::new();
            let output = app.run(&input.graph, &mut recorder);
            if config.validate {
                if let Err(e) = validate(&input.graph, &output) {
                    panic!("{} on {}: {e}", app.name(), input.name);
                }
            }
            let mut compiled = CompiledTrace::new(recorder.into_trace());
            for machine in &machines {
                let mut times = Vec::with_capacity(NUM_CONFIGS);
                for idx in 0..NUM_CONFIGS {
                    let cfg = OptConfig::from_index(idx);
                    let base = compiled.replay(machine, cfg).time_ns;
                    let mut rng = noise_rng(
                        config.seed,
                        app.name(),
                        &input.name,
                        &machine.chip().name,
                        idx,
                    );
                    let runs: Vec<f64> = (0..config.runs)
                        .map(|_| base * rng.next_log_normal(0.0, config.noise_sigma))
                        .collect();
                    times.push(runs);
                }
                cells.push(Cell {
                    app: app.name().to_owned(),
                    input: input.name.clone(),
                    chip: machine.chip().name.clone(),
                    times,
                });
            }
        }
    }

    Dataset {
        apps: apps.iter().map(|a| a.name().to_owned()).collect(),
        inputs: inputs.iter().map(|i| i.name.clone()).collect(),
        chips: chips.iter().map(|c| c.name.clone()).collect(),
        runs: config.runs,
        cells,
    }
}

/// Derives the per-(cell, configuration) noise stream.
fn noise_rng(seed: u64, app: &str, input: &str, chip: &str, config_index: usize) -> Rng64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
    for byte in app
        .bytes()
        .chain([0])
        .chain(input.bytes())
        .chain([0])
        .chain(chip.bytes())
        .chain([0])
        .chain((config_index as u32).to_le_bytes())
    {
        h ^= byte as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    Rng64::new(seed ^ h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpp_sim::opts::Optimization;

    fn tiny_dataset() -> Dataset {
        run_study(&StudyConfig::tiny())
    }

    #[test]
    fn tiny_study_has_full_grid() {
        let ds = tiny_dataset();
        assert_eq!(ds.apps.len(), 17);
        assert_eq!(ds.inputs.len(), 3);
        assert_eq!(ds.chips.len(), 6);
        assert_eq!(ds.cells.len(), 17 * 3 * 6);
        for cell in &ds.cells {
            assert_eq!(cell.times.len(), NUM_CONFIGS);
            assert!(cell.times.iter().all(|r| r.len() == 3));
            assert!(cell
                .times
                .iter()
                .flatten()
                .all(|&t| t.is_finite() && t > 0.0));
        }
    }

    #[test]
    fn extended_inputs_grow_the_grid() {
        let ds = run_study(&StudyConfig {
            extended_inputs: true,
            ..StudyConfig::tiny()
        });
        assert_eq!(ds.inputs.len(), 6);
        assert_eq!(ds.cells.len(), 17 * 6 * 6);
    }

    #[test]
    fn study_is_deterministic() {
        let a = run_study(&StudyConfig::tiny());
        let b = run_study(&StudyConfig::tiny());
        assert_eq!(a, b);
    }

    #[test]
    fn different_seed_changes_times_not_shape() {
        let a = run_study(&StudyConfig::tiny());
        let b = run_study(&StudyConfig {
            seed: 1234,
            ..StudyConfig::tiny()
        });
        assert_eq!(a.cells.len(), b.cells.len());
        assert_ne!(a, b);
    }

    #[test]
    fn cell_lookup_and_median() {
        let ds = tiny_dataset();
        let cell = ds.cell("bfs-wl", "road", "MALI").expect("cell exists");
        let m = cell.median(OptConfig::baseline());
        let runs = cell.runs(OptConfig::baseline());
        assert!(runs.contains(&m));
        assert!(ds.cell("bfs-wl", "road", "NOPE").is_none());
    }

    #[test]
    fn select_filters_dimensions() {
        let ds = tiny_dataset();
        assert_eq!(ds.select(Some("tri"), None, None).count(), 3 * 6);
        assert_eq!(ds.select(None, Some("road"), None).count(), 17 * 6);
        assert_eq!(ds.select(None, None, Some("R9")).count(), 17 * 3);
        assert_eq!(ds.select(Some("tri"), Some("road"), Some("R9")).count(), 1);
    }

    #[test]
    fn noise_is_small_and_multiplicative() {
        let ds = tiny_dataset();
        for cell in ds.cells.iter().take(20) {
            for runs in &cell.times {
                let mean = runs.iter().sum::<f64>() / runs.len() as f64;
                for &t in runs {
                    assert!((t / mean - 1.0).abs() < 0.2, "noise too large: {runs:?}");
                }
            }
        }
    }

    #[test]
    fn oitergb_helps_mali_road_bfs() {
        // A smoke test of the paper's central mechanism at tiny scale.
        let ds = tiny_dataset();
        let cell = ds.cell("bfs-wl", "road", "MALI").expect("cell exists");
        let speedup = cell.speedup(OptConfig::baseline().with(Optimization::Oitergb));
        assert!(
            speedup > 1.5,
            "oitergb speedup on MALI road bfs-wl: {speedup}"
        );
    }

    #[test]
    fn json_round_trip() {
        let ds = tiny_dataset();
        let dir = std::env::temp_dir().join("gpp-study-test");
        let path = dir.join("dataset.json");
        ds.save_json(&path).unwrap();
        let back = Dataset::load_json(&path).unwrap();
        assert_eq!(ds, back);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    #[should_panic(expected = "at least one run")]
    fn zero_runs_rejected() {
        run_study(&StudyConfig {
            runs: 0,
            ..StudyConfig::tiny()
        });
    }
}

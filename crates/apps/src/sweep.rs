//! The parametric chip sweep: price a cloud of synthetic chips against
//! the cached trace arena in one chip-major traversal per geometry.
//!
//! A sweep answers the question Table VI can only gesture at with six
//! GPUs: *which hardware mechanism flips each optimisation from win to
//! loss?* It records one trace per (application, input) pair — exactly
//! the study's phase 1 — then partitions the chip cloud into
//! [`ChipBatch`] geometry families and replays every trace against every
//! batch with [`CompiledTrace::replay_all_configs_many_chips`], walking
//! each aggregate table once per batch instead of once per chip.
//!
//! The per-chip effect of an optimisation `o` is summarised as the mean
//! log runtime ratio over all (application, input) pairs and all
//! configurations enabling `o` (the paper's `ALL_OPT_SETTINGS`):
//! `mean ln(t[cfg] / t[cfg.without(o)])` — negative means the
//! optimisation wins on that chip. No timing noise is applied: a sweep
//! is a pure function of its configuration and chip set, so batched and
//! per-chip (`oracle`) runs serialise byte-identically.

use std::sync::Arc;

use gpp_obs::metrics;
use gpp_obs::Tracer;
use gpp_sim::chip::{ChipBatch, ChipProfile};
use gpp_sim::exec::Machine;
use gpp_sim::opts::{settings_enabling, Optimization};
use gpp_sim::trace::{CompiledTrace, Recorder};
use serde::{Deserialize, Serialize};

use crate::app::validate;
use crate::apps::all_applications;
use crate::cache::TraceCache;
use crate::inputs::{study_inputs, StudyScale};
use crate::par::par_map_pooled_traced;

/// Parameters of a chip sweep.
#[derive(Debug, Clone, Copy)]
pub struct SweepConfig {
    /// Input scale for trace collection.
    pub scale: StudyScale,
    /// Seed for input generation (the pricing itself is noiseless).
    pub seed: u64,
    /// Worker threads (0 = auto, as [`crate::study::StudyConfig`]).
    pub threads: usize,
    /// Validate application outputs while collecting traces.
    pub validate: bool,
    /// Price chips one at a time through the chip-at-a-time oracle path
    /// instead of the chip-major batch path. The result is bit-identical
    /// — this flag exists so CI can `cmp` the two outputs.
    pub per_chip: bool,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            scale: StudyScale::Small,
            seed: 0x9a7e_2019,
            threads: 0,
            validate: true,
            per_chip: false,
        }
    }
}

impl SweepConfig {
    /// A minimal configuration for unit tests and CI smoke runs.
    pub fn tiny() -> Self {
        SweepConfig {
            scale: StudyScale::Tiny,
            ..SweepConfig::default()
        }
    }
}

/// The result of a chip sweep: per-chip, per-optimisation mean log
/// runtime ratios over the whole (application, input) grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChipSweep {
    /// Chip names, in input order.
    pub chips: Vec<String>,
    /// Optimisation names, in [`Optimization::ALL`] order.
    pub opts: Vec<String>,
    /// `log_ratios[chip][opt]` — mean `ln(t[cfg] / t[cfg without opt])`
    /// over all pairs and enabling configurations; negative is a win.
    pub log_ratios: Vec<Vec<f64>>,
    /// Per optimisation, the fraction of chips where it wins
    /// (`log_ratio < 0`).
    pub win_fraction: Vec<f64>,
    /// Number of (application, input) pairs priced.
    pub pairs: usize,
}

/// For each optimisation, the `(with, without)` configuration index
/// pairs its mean ranges over — computed once per sweep.
fn opt_probes() -> Vec<(Optimization, Vec<(usize, usize)>)> {
    Optimization::ALL
        .into_iter()
        .map(|opt| {
            let pairs = settings_enabling(opt)
                .into_iter()
                .map(|cfg| (cfg.index(), cfg.without(opt).index()))
                .collect();
            (opt, pairs)
        })
        .collect()
}

/// One (pair, chip)'s mean log ratio per optimisation, from that chip's
/// 96 per-configuration times.
fn pair_opt_means(
    times: &[gpp_sim::exec::RunStats],
    probes: &[(Optimization, Vec<(usize, usize)>)],
) -> Vec<f64> {
    probes
        .iter()
        .map(|(_, idx)| {
            let mut sum = 0.0;
            for &(with, without) in idx {
                sum += (times[with].time_ns / times[without].time_ns).ln();
            }
            sum / idx.len() as f64
        })
        .collect()
}

/// Raw pricing of a chip cloud: for every (application, input) pair and
/// every chip, the full 96 per-configuration runtimes.
///
/// This is the `gpp sweep` → `gpp portfolio` handoff. Each row feeds
/// [`SlowdownMatrix::from_cell_times`], which normalises it to that
/// cell's own oracle, so a portfolio searched over a synthetic chip
/// cloud uses exactly the same [`ChipBatch`] pricing as the sweep
/// itself — and, like the sweep, is a pure function of its
/// configuration and chip set.
///
/// [`SlowdownMatrix::from_cell_times`]:
/// ../../gpp_core/portfolio/struct.SlowdownMatrix.html#method.from_cell_times
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CloudTimes {
    /// Cell labels, `app/input@chip`, pair-major then chip order.
    pub cells: Vec<String>,
    /// `times[cell][config]` — runtime in nanoseconds, indexed by
    /// [`gpp_sim::opts::OptConfig::index`].
    pub times: Vec<Vec<f64>>,
}

/// Prices every (application, input, chip) cell of a chip cloud through
/// the batched [`ChipBatch`] replay path (or the chip-at-a-time oracle
/// path when `config.per_chip` is set — the rows are bit-identical).
/// Rows are scattered back to pair-major, chip-minor order regardless
/// of batch partitioning or thread count.
///
/// # Panics
///
/// Panics as [`run_sweep`] does.
pub fn price_cloud(config: &SweepConfig, chips: &[ChipProfile]) -> CloudTimes {
    price_cloud_cached(config, chips, None)
}

/// [`price_cloud`] with a persistent [`TraceCache`], sharing traces
/// with `gpp study` and `gpp sweep` runs at the same scale and seed.
///
/// # Panics
///
/// Panics as [`run_sweep`] does.
pub fn price_cloud_cached(
    config: &SweepConfig,
    chips: &[ChipProfile],
    cache: Option<&TraceCache>,
) -> CloudTimes {
    assert!(!chips.is_empty(), "need at least one chip to price");
    let tracer = Tracer::disabled();
    let config = *config;
    let inputs = Arc::new(study_inputs(config.scale, config.seed));
    let apps = Arc::new(all_applications());
    let threads = crate::par::effective_threads(config.threads);
    let batches = Arc::new(ChipBatch::partition(chips));
    let reps: Arc<Vec<Machine>> = Arc::new(
        batches
            .iter()
            .map(|b| Machine::new(b.chips()[0].clone()))
            .collect(),
    );
    let pairs: Arc<Vec<(usize, usize)>> = Arc::new(
        (0..inputs.len())
            .flat_map(|i| (0..apps.len()).map(move |a| (i, a)))
            .collect(),
    );
    let traces = collect_pair_traces(config, &inputs, &apps, &reps, &pairs, threads, &tracer, cache);

    let tasks: Arc<Vec<(usize, usize)>> = Arc::new(
        (0..pairs.len())
            .flat_map(|p| (0..batches.len()).map(move |b| (p, b)))
            .collect(),
    );
    let priced: Vec<Vec<Vec<f64>>> = {
        let batches = Arc::clone(&batches);
        let traces = Arc::clone(&traces);
        par_map_pooled_traced(&tasks, threads, &tracer, "price-cloud", move |_, &(p, b)| {
            let batch = &batches[b];
            if config.per_chip {
                batch
                    .chips()
                    .iter()
                    .map(|chip| {
                        let stats = traces[p].replay_all_configs(&Machine::new(chip.clone()));
                        stats.iter().map(|s| s.time_ns).collect()
                    })
                    .collect()
            } else {
                traces[p]
                    .replay_all_configs_many_chips(batch)
                    .iter()
                    .map(|stats| stats.iter().map(|s| s.time_ns).collect())
                    .collect()
            }
        })
    };
    metrics::counter("sweep.chips_priced", (chips.len() * pairs.len()) as u64);

    // Scatter batch-local rows back to (pair, input-order chip) cells.
    let mut times = vec![Vec::new(); pairs.len() * chips.len()];
    for (&(p, b), rows) in tasks.iter().zip(&priced) {
        for (&chip_idx, row) in batches[b].source_indices().iter().zip(rows) {
            times[p * chips.len() + chip_idx] = row.clone();
        }
    }
    let cells = pairs
        .iter()
        .flat_map(|&(i, a)| {
            let label = format!("{}/{}", apps[a].name(), inputs[i].name);
            chips
                .iter()
                .map(move |chip| format!("{label}@{}", chip.name))
        })
        .collect();
    CloudTimes { cells, times }
}

/// Phase 1 of both [`run_sweep_traced`] and [`price_cloud_cached`]: one
/// compiled trace per (input, application) pair, input-major, loaded
/// from the cache when one is supplied and precompiled for every batch
/// representative.
#[allow(clippy::too_many_arguments)]
fn collect_pair_traces(
    config: SweepConfig,
    inputs: &Arc<Vec<crate::inputs::StudyInput>>,
    apps: &Arc<Vec<Box<dyn crate::app::Application>>>,
    reps: &Arc<Vec<Machine>>,
    pairs: &Arc<Vec<(usize, usize)>>,
    threads: usize,
    tracer: &Tracer,
    cache: Option<&TraceCache>,
) -> Arc<Vec<CompiledTrace>> {
    let inputs = Arc::clone(inputs);
    let apps = Arc::clone(apps);
    let reps = Arc::clone(reps);
    let cache = cache.cloned();
    let traces = par_map_pooled_traced(pairs, threads, tracer, "collect-traces", move |_, &(i, a)| {
        let cache = cache.as_ref();
        let (input, app) = (&inputs[i], &apps[a]);
        let cached = cache.and_then(|c| c.load(app.name(), app.content_version(), input, config.scale, config.seed));
        let trace = match cached {
            Some(trace) => trace,
            None => {
                let mut recorder = Recorder::new();
                let output = app.run(&input.graph, &mut recorder);
                if config.validate {
                    if let Err(e) = validate(&input.graph, &output) {
                        panic!("{} on {}: {e}", app.name(), input.name);
                    }
                }
                let trace = recorder.into_trace();
                if let Some(c) = cache {
                    c.store(app.name(), app.content_version(), input, config.scale, config.seed, &trace);
                }
                trace
            }
        };
        let compiled = CompiledTrace::new(trace);
        compiled.precompile_all(&reps);
        compiled
    });
    Arc::new(traces)
}

/// Runs a sweep of `chips` over the study applications and inputs.
///
/// # Panics
///
/// Panics if `chips` is empty, any chip fails
/// [`ChipProfile::validate`], or (with `config.validate`) an application
/// produces an incorrect result.
pub fn run_sweep(config: &SweepConfig, chips: &[ChipProfile]) -> ChipSweep {
    run_sweep_cached(config, chips, None)
}

/// [`run_sweep`] with a persistent [`TraceCache`], sharing traces with
/// `gpp study --trace-cache` runs at the same scale and seed. The sweep
/// is byte-identical with or without a cache.
///
/// # Panics
///
/// Panics as [`run_sweep`] does.
pub fn run_sweep_cached(
    config: &SweepConfig,
    chips: &[ChipProfile],
    cache: Option<&TraceCache>,
) -> ChipSweep {
    run_sweep_traced(config, chips, &Tracer::disabled(), cache)
}

/// [`run_sweep_cached`] with pipeline tracing: emits a `sweep` span
/// over the whole run, a `phase` span per pipeline stage
/// (`generate-inputs`, `collect-traces`, `price-batches`, `finalize`),
/// and per-worker `busy-ns` counters, exactly following the study's
/// span conventions so `gpp profile sweep` and [`gpp_obs::TraceSummary`]
/// work unchanged. With a disabled tracer this *is*
/// [`run_sweep_cached`]; the sweep is byte-identical either way.
///
/// # Panics
///
/// Panics as [`run_sweep`] does.
pub fn run_sweep_traced(
    config: &SweepConfig,
    chips: &[ChipProfile],
    tracer: &Tracer,
    cache: Option<&TraceCache>,
) -> ChipSweep {
    assert!(!chips.is_empty(), "need at least one chip to sweep");
    let _sweep_span = tracer.span("sweep");
    let (inputs, apps) = {
        let _phase = tracer.span_detail("phase", Some("generate-inputs".to_owned()));
        (study_inputs(config.scale, config.seed), all_applications())
    };
    // Arc-shared fan-out state: both phases run on the persistent
    // worker pool, whose jobs must be `'static`.
    let config = *config;
    let inputs = Arc::new(inputs);
    let apps = Arc::new(apps);
    let threads = crate::par::effective_threads(config.threads);

    // Geometry families; a representative machine per family is enough
    // to precompile every aggregation either replay path will touch.
    let batches = Arc::new(ChipBatch::partition(chips));
    let reps: Arc<Vec<Machine>> = Arc::new(
        batches
            .iter()
            .map(|b| Machine::new(b.chips()[0].clone()))
            .collect(),
    );

    // Phase 1: one trace per (input, application) pair, input-major —
    // the same arena the study replays, loaded from the cache when one
    // is supplied.
    let pairs: Arc<Vec<(usize, usize)>> = Arc::new(
        (0..inputs.len())
            .flat_map(|i| (0..apps.len()).map(move |a| (i, a)))
            .collect(),
    );
    let traces: Arc<Vec<CompiledTrace>> = {
        let _phase = tracer.span_detail("phase", Some("collect-traces".to_owned()));
        collect_pair_traces(config, &inputs, &apps, &reps, &pairs, threads, tracer, cache)
    };

    // Phase 2: price each (pair, batch) task — every chip in the batch
    // in one traversal per geometry, or one chip at a time when
    // `per_chip` asks for the oracle path. Both paths produce
    // bit-identical times, and the fold below runs in the same task
    // order either way, so the two sweeps serialise byte-identically.
    let probes = Arc::new(opt_probes());
    let tasks: Arc<Vec<(usize, usize)>> = Arc::new(
        (0..pairs.len())
            .flat_map(|p| (0..batches.len()).map(move |b| (p, b)))
            .collect(),
    );
    let priced: Vec<Vec<Vec<f64>>> = {
        let _phase = tracer.span_detail("phase", Some("price-batches".to_owned()));
        let batches = Arc::clone(&batches);
        let traces = Arc::clone(&traces);
        let probes = Arc::clone(&probes);
        par_map_pooled_traced(&tasks, threads, tracer, "price-batches", move |_, &(p, b)| {
            let batch = &batches[b];
            if config.per_chip {
                batch
                    .chips()
                    .iter()
                    .map(|chip| {
                        let stats = traces[p].replay_all_configs(&Machine::new(chip.clone()));
                        pair_opt_means(&stats, &probes)
                    })
                    .collect()
            } else {
                traces[p]
                    .replay_all_configs_many_chips(batch)
                    .iter()
                    .map(|stats| pair_opt_means(stats, &probes))
                    .collect()
            }
        })
    };
    metrics::counter("sweep.chips_priced", (chips.len() * pairs.len()) as u64);

    let _finalize = tracer.span_detail("phase", Some("finalize".to_owned()));

    // Scatter batch-local rows back to input chip order and average over
    // pairs (task order is pair-major, so each chip's fold visits pairs
    // in ascending order regardless of thread count).
    let n_opts = probes.len();
    let mut log_ratios = vec![vec![0.0f64; n_opts]; chips.len()];
    for (&(_, b), rows) in tasks.iter().zip(&priced) {
        for (&chip_idx, row) in batches[b].source_indices().iter().zip(rows) {
            for (acc, &v) in log_ratios[chip_idx].iter_mut().zip(row) {
                *acc += v;
            }
        }
    }
    let n_pairs = pairs.len() as f64;
    for row in &mut log_ratios {
        for v in row.iter_mut() {
            *v /= n_pairs;
        }
    }

    let win_fraction = (0..n_opts)
        .map(|k| {
            let wins = log_ratios.iter().filter(|row| row[k] < 0.0).count();
            wins as f64 / chips.len() as f64
        })
        .collect();

    ChipSweep {
        chips: chips.iter().map(|c| c.name.clone()).collect(),
        opts: probes.iter().map(|(o, _)| o.name().to_owned()).collect(),
        log_ratios,
        win_fraction,
        pairs: pairs.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpp_sim::chip::{latin_hypercube_chips, study_chips};

    fn sweep_chips() -> Vec<ChipProfile> {
        let mut chips = study_chips();
        chips.extend(latin_hypercube_chips(6, 7));
        chips
    }

    #[test]
    fn sweep_has_full_shape_and_finite_ratios() {
        let chips = sweep_chips();
        let sweep = run_sweep(&SweepConfig::tiny(), &chips);
        assert_eq!(sweep.chips.len(), chips.len());
        assert_eq!(sweep.opts.len(), Optimization::ALL.len());
        assert_eq!(sweep.pairs, 17 * 3);
        assert_eq!(sweep.log_ratios.len(), chips.len());
        for row in &sweep.log_ratios {
            assert_eq!(row.len(), sweep.opts.len());
            assert!(row.iter().all(|v| v.is_finite()));
        }
        assert!(sweep
            .win_fraction
            .iter()
            .all(|&f| (0.0..=1.0).contains(&f)));
    }

    #[test]
    fn batched_sweep_is_byte_identical_to_per_chip_oracle() {
        let chips = sweep_chips();
        let cfg = SweepConfig::tiny();
        let batched = run_sweep(&cfg, &chips);
        let oracle = run_sweep(
            &SweepConfig {
                per_chip: true,
                threads: 4,
                ..cfg
            },
            &chips,
        );
        assert_eq!(batched, oracle);
        assert_eq!(
            serde_json::to_string(&batched).unwrap(),
            serde_json::to_string(&oracle).unwrap()
        );
    }

    #[test]
    fn sweep_is_deterministic_across_thread_counts() {
        let chips = study_chips();
        let a = run_sweep(&SweepConfig::tiny(), &chips);
        let b = run_sweep(
            &SweepConfig {
                threads: 3,
                ..SweepConfig::tiny()
            },
            &chips,
        );
        assert_eq!(a, b);
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
    }

    #[test]
    fn traced_sweep_is_byte_identical_to_untraced() {
        use std::sync::Arc;
        let chips = study_chips();
        let plain = run_sweep(&SweepConfig::tiny(), &chips);
        let sink = Arc::new(gpp_obs::MemorySink::new());
        let tracer = Tracer::new(sink.clone());
        let traced = run_sweep_traced(
            &SweepConfig {
                threads: 4,
                ..SweepConfig::tiny()
            },
            &chips,
            &tracer,
            None,
        );
        assert_eq!(plain, traced);
        assert_eq!(
            serde_json::to_string(&plain).unwrap(),
            serde_json::to_string(&traced).unwrap()
        );
        let events = sink.take();
        assert!(events.iter().any(|e| e.name == "sweep"));
        for phase in ["generate-inputs", "collect-traces", "price-batches", "finalize"] {
            assert!(
                events
                    .iter()
                    .any(|e| e.name == "phase" && e.detail.as_deref() == Some(phase)),
                "missing phase span {phase}"
            );
        }
        assert!(events
            .iter()
            .any(|e| e.name == "busy-ns" && e.detail.as_deref() == Some("price-batches")));
    }

    #[test]
    fn cloud_times_have_full_shape_and_labels() {
        let chips = study_chips();
        let cloud = price_cloud(&SweepConfig::tiny(), &chips);
        assert_eq!(cloud.times.len(), 17 * 3 * chips.len());
        assert_eq!(cloud.cells.len(), cloud.times.len());
        for row in &cloud.times {
            assert_eq!(row.len(), gpp_sim::opts::NUM_CONFIGS);
            assert!(row.iter().all(|v| v.is_finite() && *v > 0.0));
        }
        // Pair-major, chip-minor: the first |chips| cells share a pair
        // label and walk the chips in input order.
        for (c, chip) in chips.iter().enumerate() {
            assert!(cloud.cells[c].ends_with(&format!("@{}", chip.name)));
        }
    }

    #[test]
    fn cloud_pricing_is_identical_batched_vs_per_chip_at_any_threads() {
        let chips = sweep_chips();
        let cfg = SweepConfig::tiny();
        let batched = price_cloud(&cfg, &chips);
        let oracle = price_cloud(
            &SweepConfig {
                per_chip: true,
                threads: 4,
                ..cfg
            },
            &chips,
        );
        assert_eq!(batched, oracle);
        for (a, b) in batched.times.iter().zip(&oracle.times) {
            for (x, y) in a.iter().zip(b) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn oitergb_wins_on_launch_heavy_chips() {
        // The sweep must reproduce the paper's central mechanism: on
        // MALI (huge launch cost, tiny occupancy) iteration outlining
        // wins; its mean log ratio is negative.
        let chips = study_chips();
        let sweep = run_sweep(&SweepConfig::tiny(), &chips);
        let mali = sweep.chips.iter().position(|c| c == "MALI").unwrap();
        let oitergb = sweep.opts.iter().position(|o| o == "oitergb").unwrap();
        assert!(
            sweep.log_ratios[mali][oitergb] < 0.0,
            "oitergb on MALI: {}",
            sweep.log_ratios[mali][oitergb]
        );
    }
}

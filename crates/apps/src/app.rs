//! The application abstraction: a graph algorithm "compiled" against the
//! abstract GPU machine.

use gpp_graph::{properties, Graph, NodeId};
use gpp_sim::exec::Executor;
use serde::{Deserialize, Serialize};

/// The seven high-level problems of the study (paper Table VII).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Problem {
    /// Breadth-first search.
    Bfs,
    /// Connected components.
    Cc,
    /// Maximal independent set.
    Mis,
    /// Minimum spanning tree (forest).
    Mst,
    /// PageRank.
    Pr,
    /// Single-source shortest paths.
    Sssp,
    /// Triangle counting.
    Tri,
}

impl Problem {
    /// All problems in Table VII order.
    pub const ALL: [Problem; 7] = [
        Problem::Bfs,
        Problem::Cc,
        Problem::Mis,
        Problem::Mst,
        Problem::Pr,
        Problem::Sssp,
        Problem::Tri,
    ];
}

impl std::fmt::Display for Problem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Problem::Bfs => "BFS",
            Problem::Cc => "CC",
            Problem::Mis => "MIS",
            Problem::Mst => "MST",
            Problem::Pr => "PR",
            Problem::Sssp => "SSSP",
            Problem::Tri => "TRI",
        })
    }
}

/// The result computed by an application run, used for validation against
/// sequential reference implementations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AppOutput {
    /// BFS hop distances from node 0 (`u32::MAX` = unreachable).
    Levels(Vec<u32>),
    /// SSSP weighted distances from node 0 (`u64::MAX` = unreachable).
    Distances(Vec<u64>),
    /// Per-node component labels (minimum node id in the component).
    Labels(Vec<NodeId>),
    /// Per-node maximal-independent-set membership.
    Independent(Vec<bool>),
    /// Total weight of a minimum spanning forest.
    MstWeight(u64),
    /// PageRank scores (damping 0.85).
    Ranks(Vec<f64>),
    /// Number of triangles.
    TriangleCount(u64),
}

/// A graph application expressed against the abstract machine.
///
/// `run` must compute a correct result (checked by [`validate`]) while
/// reporting every kernel invocation — with per-node degrees and worklist
/// pushes — to the executor. The executor is either a timing session or a
/// trace recorder; the algorithm must not depend on which.
pub trait Application: Send + Sync {
    /// The application's name, e.g. `"bfs-wl"`.
    fn name(&self) -> &'static str;
    /// The high-level problem this application solves.
    fn problem(&self) -> Problem;
    /// Whether this is the fastest implementation strategy for its
    /// problem (the `(*)` mark in paper Table VII).
    fn fastest_variant(&self) -> bool {
        false
    }
    /// A hash of the application's *definition*, folded into trace-cache
    /// keys so editing the program behind an app can never serve a stale
    /// cached trace. Handwritten apps are versioned by the crate itself
    /// (changing them means recompiling, and [`RECORDER_VERSION`]
    /// guards format drift), so the default is a constant; DSL-backed
    /// apps override this with a content hash of the compiled program.
    ///
    /// [`RECORDER_VERSION`]: gpp_sim::trace::RECORDER_VERSION
    fn content_version(&self) -> u64 {
        0
    }
    /// Executes the algorithm on `graph`, reporting kernels to `exec`.
    fn run(&self, graph: &Graph, exec: &mut dyn Executor) -> AppOutput;
}

/// Validates an application's output against the sequential reference
/// implementations in [`gpp_graph::properties`].
///
/// # Errors
///
/// Returns a description of the first discrepancy found.
pub fn validate(graph: &Graph, output: &AppOutput) -> Result<(), String> {
    match output {
        AppOutput::Levels(levels) => {
            let expect = properties::bfs_levels(graph, 0);
            if levels != &expect {
                return Err(first_diff("BFS level", levels, &expect));
            }
        }
        AppOutput::Distances(dist) => {
            let expect = properties::dijkstra(graph, 0);
            if dist != &expect {
                return Err(first_diff("SSSP distance", dist, &expect));
            }
        }
        AppOutput::Labels(labels) => {
            let expect = properties::connected_components(graph).labels;
            if labels != &expect {
                return Err(first_diff("CC label", labels, &expect));
            }
        }
        AppOutput::Independent(in_set) => {
            if in_set.len() != graph.num_nodes() {
                return Err(format!(
                    "MIS length {} does not match node count {}",
                    in_set.len(),
                    graph.num_nodes()
                ));
            }
            for u in graph.nodes() {
                if in_set[u as usize] {
                    // Independence: no selected neighbour.
                    if let Some(&v) = graph
                        .neighbors(u)
                        .iter()
                        .find(|&&v| v != u && in_set[v as usize])
                    {
                        return Err(format!("MIS not independent: {u} and {v} both selected"));
                    }
                } else {
                    // Maximality: some selected neighbour.
                    let covered = graph.neighbors(u).iter().any(|&v| in_set[v as usize]);
                    if !covered {
                        return Err(format!("MIS not maximal: {u} and no neighbour selected"));
                    }
                }
            }
        }
        AppOutput::MstWeight(w) => {
            let expect = properties::mst_weight(graph);
            if *w != expect {
                return Err(format!("MST weight {w} != reference {expect}"));
            }
        }
        AppOutput::Ranks(ranks) => {
            if ranks.len() != graph.num_nodes() {
                return Err(format!(
                    "rank vector length {} does not match node count {}",
                    ranks.len(),
                    graph.num_nodes()
                ));
            }
            let expect = reference_pagerank(graph);
            for (v, (got, want)) in ranks.iter().zip(&expect).enumerate() {
                if (got - want).abs() > 1e-3 {
                    return Err(format!("PageRank of {v}: {got} vs reference {want}"));
                }
            }
        }
        AppOutput::TriangleCount(n) => {
            let expect = properties::triangle_count(graph);
            if *n != expect {
                return Err(format!("triangle count {n} != reference {expect}"));
            }
        }
    }
    Ok(())
}

fn first_diff<T: PartialEq + std::fmt::Debug>(what: &str, got: &[T], want: &[T]) -> String {
    if got.len() != want.len() {
        return format!(
            "{what} vector length {} != reference {}",
            got.len(),
            want.len()
        );
    }
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        if g != w {
            return format!("{what} of node {i}: {g:?} vs reference {w:?}");
        }
    }
    format!("{what}: vectors differ (no index found?)")
}

/// PageRank constants shared by the three PR variants and the reference.
pub mod pagerank {
    /// Damping factor.
    pub const DAMPING: f64 = 0.85;
    /// Convergence threshold on the L1 delta.
    pub const TOLERANCE: f64 = 1e-6;
    /// Iteration cap.
    pub const MAX_ITERS: usize = 64;
}

/// Sequential reference PageRank (pull-style power iteration) used for
/// validation. Nodes with no out-edges distribute their rank uniformly.
pub fn reference_pagerank(graph: &Graph) -> Vec<f64> {
    let n = graph.num_nodes();
    let mut rank = vec![1.0 / n as f64; n];
    let mut next = vec![0.0f64; n];
    for _ in 0..pagerank::MAX_ITERS {
        let dangling: f64 = graph
            .nodes()
            .filter(|&u| graph.degree(u) == 0)
            .map(|u| rank[u as usize])
            .sum();
        let base = (1.0 - pagerank::DAMPING) / n as f64 + pagerank::DAMPING * dangling / n as f64;
        for slot in next.iter_mut() {
            *slot = base;
        }
        for u in graph.nodes() {
            let d = graph.degree(u);
            if d > 0 {
                let share = pagerank::DAMPING * rank[u as usize] / d as f64;
                for &v in graph.neighbors(u) {
                    next[v as usize] += share;
                }
            }
        }
        let delta: f64 = rank.iter().zip(&next).map(|(a, b)| (a - b).abs()).sum();
        std::mem::swap(&mut rank, &mut next);
        if delta < pagerank::TOLERANCE {
            break;
        }
    }
    rank
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpp_graph::generators;

    #[test]
    fn problem_display_names() {
        assert_eq!(Problem::Bfs.to_string(), "BFS");
        assert_eq!(Problem::Tri.to_string(), "TRI");
        assert_eq!(Problem::ALL.len(), 7);
    }

    #[test]
    fn validate_accepts_reference_outputs() {
        let g = generators::rmat(7, 6, 3).unwrap();
        let levels = gpp_graph::properties::bfs_levels(&g, 0);
        assert_eq!(validate(&g, &AppOutput::Levels(levels)), Ok(()));
        let dist = gpp_graph::properties::dijkstra(&g, 0);
        assert_eq!(validate(&g, &AppOutput::Distances(dist)), Ok(()));
        let labels = gpp_graph::properties::connected_components(&g).labels;
        assert_eq!(validate(&g, &AppOutput::Labels(labels)), Ok(()));
        let w = gpp_graph::properties::mst_weight(&g);
        assert_eq!(validate(&g, &AppOutput::MstWeight(w)), Ok(()));
        let t = gpp_graph::properties::triangle_count(&g);
        assert_eq!(validate(&g, &AppOutput::TriangleCount(t)), Ok(()));
        let ranks = reference_pagerank(&g);
        assert_eq!(validate(&g, &AppOutput::Ranks(ranks)), Ok(()));
    }

    #[test]
    fn validate_rejects_wrong_levels() {
        let g = generators::path(4).unwrap();
        let mut levels = gpp_graph::properties::bfs_levels(&g, 0);
        levels[2] = 7;
        let err = validate(&g, &AppOutput::Levels(levels)).unwrap_err();
        assert!(err.contains("node 2"), "{err}");
    }

    #[test]
    fn validate_rejects_dependent_mis() {
        let g = generators::path(3).unwrap();
        // 0-1-2: selecting 0 and 1 violates independence.
        let err = validate(&g, &AppOutput::Independent(vec![true, true, false])).unwrap_err();
        assert!(err.contains("independent"), "{err}");
    }

    #[test]
    fn validate_rejects_non_maximal_mis() {
        let g = generators::path(3).unwrap();
        // Only node 0 selected: node 2 has no selected neighbour.
        let err = validate(&g, &AppOutput::Independent(vec![true, false, false])).unwrap_err();
        assert!(err.contains("maximal"), "{err}");
    }

    #[test]
    fn validate_accepts_valid_mis() {
        let g = generators::path(3).unwrap();
        assert_eq!(
            validate(&g, &AppOutput::Independent(vec![true, false, true])),
            Ok(())
        );
        assert_eq!(
            validate(&g, &AppOutput::Independent(vec![false, true, false])),
            Ok(())
        );
    }

    #[test]
    fn validate_rejects_wrong_mst_weight() {
        let g = generators::path(4).unwrap();
        let err = validate(&g, &AppOutput::MstWeight(999)).unwrap_err();
        assert!(err.contains("999"), "{err}");
    }

    #[test]
    fn reference_pagerank_sums_to_one() {
        for g in [
            generators::star(20).unwrap(),
            generators::rmat(7, 5, 1).unwrap(),
            generators::path(9).unwrap(),
        ] {
            let ranks = reference_pagerank(&g);
            let sum: f64 = ranks.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "sum {sum}");
            assert!(ranks.iter().all(|&r| r > 0.0));
        }
    }

    #[test]
    fn reference_pagerank_star_hub_dominates() {
        let g = generators::star(11).unwrap();
        let ranks = reference_pagerank(&g);
        assert!(ranks[0] > 3.0 * ranks[1]);
    }
}

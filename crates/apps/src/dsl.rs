//! DSL-backed study applications: the seven `gpp_irgl::programs` wrapped
//! as [`Application`]s, executed through the tiered `gpp_irgl` runtime
//! with a compile-once-run-many discipline.
//!
//! Each [`DslApp`] lowers its program to a
//! [`CompiledProgram`] exactly once per study (a [`OnceLock`], shared
//! across inputs and across the grid runner's worker threads) and then
//! runs it on the tier selected by [`Tier::from_env`] — the native
//! closure tier by default, the bytecode VM or the tree-walking AST
//! oracle under `GPP_IRGL_TIER=bytecode|ast`. The native artifact is
//! itself compiled once per program (a second `OnceLock`, inside
//! `CompiledProgram`), so the per-run cost is a fresh
//! [`KernelVm`]/[`NativeVm`] over shared compiled code. Results and
//! recorded traces are bit-identical across all three tiers, so the
//! study dataset does not depend on the executor.
//!
//! These applications are *opt-in*: [`crate::study::StudyConfig`] has a
//! `dsl_programs` flag (off by default, `gpp study --dsl`) that appends
//! them to the 17 handwritten applications, leaving the default dataset
//! untouched.

use std::sync::OnceLock;

use gpp_graph::{Graph, NodeId};
use gpp_irgl::bytecode::{CompiledProgram, KernelVm};
use gpp_irgl::native::NativeVm;
use gpp_irgl::{interp, programs, Program, Tier};
use gpp_sim::exec::Executor;

use crate::app::{AppOutput, Application, Problem};

/// How a program's output field maps onto an [`AppOutput`] for
/// validation against the sequential references.
#[derive(Debug, Clone, Copy)]
enum OutputKind {
    /// Hop levels; `f64::INFINITY` becomes `u32::MAX` (unreachable).
    Levels,
    /// Weighted distances; `f64::INFINITY` becomes `u64::MAX`.
    Distances,
    /// Component labels (minimum node id in the component).
    Labels,
    /// PageRank scores, used as-is.
    Ranks,
    /// MIS membership: state `1.0` means selected.
    Independent,
}

/// One DSL program adapted to the [`Application`] interface.
pub struct DslApp {
    name: &'static str,
    problem: Problem,
    kind: OutputKind,
    program: Program,
    compiled: OnceLock<CompiledProgram>,
}

impl DslApp {
    fn new(name: &'static str, problem: Problem, kind: OutputKind, program: Program) -> Self {
        DslApp {
            name,
            problem,
            kind,
            program,
            compiled: OnceLock::new(),
        }
    }

    /// The wrapped DSL program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The compiled program, lowering on first use.
    fn compiled(&self) -> &CompiledProgram {
        self.compiled.get_or_init(|| {
            CompiledProgram::compile(&self.program).expect("built-in DSL programs are valid")
        })
    }
}

impl Application for DslApp {
    fn name(&self) -> &'static str {
        self.name
    }

    fn problem(&self) -> Problem {
        self.problem
    }

    fn content_version(&self) -> u64 {
        self.compiled().content_hash()
    }

    fn run(&self, graph: &Graph, exec: &mut dyn Executor) -> AppOutput {
        let result = match Tier::from_env() {
            Tier::Ast => interp::execute_ast(&self.program, graph, exec),
            Tier::Bytecode => KernelVm::new().run(self.compiled(), graph, exec),
            Tier::Native => NativeVm::new().run(self.compiled(), graph, exec),
        }
        .unwrap_or_else(|e| panic!("{}: {e}", self.name));
        let out = result.output(&self.program);
        match self.kind {
            OutputKind::Levels => AppOutput::Levels(
                out.iter()
                    .map(|&x| if x.is_finite() { x as u32 } else { u32::MAX })
                    .collect(),
            ),
            OutputKind::Distances => AppOutput::Distances(
                out.iter()
                    .map(|&x| if x.is_finite() { x as u64 } else { u64::MAX })
                    .collect(),
            ),
            OutputKind::Labels => AppOutput::Labels(out.iter().map(|&x| x as NodeId).collect()),
            OutputKind::Ranks => AppOutput::Ranks(out.to_vec()),
            OutputKind::Independent => {
                AppOutput::Independent(out.iter().map(|&x| x == 1.0).collect())
            }
        }
    }
}

/// The seven DSL programs as study applications (`dsl-` name prefix so
/// they never collide with the handwritten registry).
pub fn dsl_applications() -> Vec<Box<dyn Application>> {
    vec![
        Box::new(DslApp::new(
            "dsl-bfs-tp",
            Problem::Bfs,
            OutputKind::Levels,
            programs::bfs_topology(),
        )),
        Box::new(DslApp::new(
            "dsl-bfs-wl",
            Problem::Bfs,
            OutputKind::Levels,
            programs::bfs_worklist(),
        )),
        Box::new(DslApp::new(
            "dsl-sssp-bf",
            Problem::Sssp,
            OutputKind::Distances,
            programs::sssp_bellman(),
        )),
        Box::new(DslApp::new(
            "dsl-sssp-wl",
            Problem::Sssp,
            OutputKind::Distances,
            programs::sssp_worklist(),
        )),
        Box::new(DslApp::new(
            "dsl-cc-lp",
            Problem::Cc,
            OutputKind::Labels,
            programs::cc_label_prop(),
        )),
        Box::new(DslApp::new(
            "dsl-pr-pull",
            Problem::Pr,
            OutputKind::Ranks,
            programs::pr_pull(),
        )),
        Box::new(DslApp::new(
            "dsl-mis-luby",
            Problem::Mis,
            OutputKind::Independent,
            programs::mis_luby(),
        )),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::validate;
    use crate::inputs::{study_inputs, StudyScale};
    use gpp_sim::trace::Recorder;

    #[test]
    fn registry_has_seven_uniquely_named_apps() {
        let apps = dsl_applications();
        assert_eq!(apps.len(), 7);
        let mut names: Vec<&str> = apps.iter().map(|a| a.name()).collect();
        assert!(names.iter().all(|n| n.starts_with("dsl-")));
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 7);
    }

    #[test]
    fn dsl_outputs_validate_against_references_on_study_inputs() {
        for input in study_inputs(StudyScale::Tiny, 0x9a7e_2019) {
            for app in dsl_applications() {
                let mut rec = Recorder::new();
                let output = app.run(&input.graph, &mut rec);
                validate(&input.graph, &output)
                    .unwrap_or_else(|e| panic!("{} on {}: {e}", app.name(), input.name));
                assert!(rec.into_trace().num_kernels() > 0, "{}", app.name());
            }
        }
    }

    #[test]
    fn compile_once_run_many_yields_identical_traces() {
        let inputs = study_inputs(StudyScale::Tiny, 7);
        for app in dsl_applications() {
            // Same DslApp instance across inputs: the second and third
            // runs reuse the cached CompiledProgram.
            let mut first = Vec::new();
            for input in &inputs {
                let mut rec = Recorder::new();
                app.run(&input.graph, &mut rec);
                first.push(rec.into_trace());
            }
            for (input, trace) in inputs.iter().zip(&first) {
                let mut rec = Recorder::new();
                app.run(&input.graph, &mut rec);
                assert_eq!(&rec.into_trace(), trace, "{}", app.name());
            }
        }
    }
}

//! Persistent on-disk cache of recorded traces.
//!
//! Recording a trace — running an application over its input graph and
//! validating the output — is the only part of the study that cannot be
//! replayed cheaply, yet it is a pure function of (application, input).
//! A [`TraceCache`] persists each recorded [`Trace`] as JSON in a
//! directory, keyed by a content hash of the application name, the
//! input specification (name, scale, generation seed, and the generated
//! graph's shape), and [`RECORDER_VERSION`], so repeated studies and
//! CLI invocations skip the `collect-traces` phase entirely (`gpp study
//! --trace-cache DIR`).
//!
//! Cache keys deliberately cover everything a trace depends on:
//!
//! * a different application, input, scale, or seed hashes to a
//!   different key, so distinct traces can never collide on a file;
//! * the application's
//!   [`content_version`](crate::app::Application::content_version) is
//!   folded in, so an app whose *definition* can change without a
//!   recompile — a DSL program — invalidates its own entries when
//!   edited instead of serving a stale trace;
//! * bumping [`RECORDER_VERSION`] (any change to the trace format or
//!   recording semantics) invalidates every existing entry;
//! * the generated graph's node and edge counts are mixed in as a guard
//!   against generator drift — if the same (name, scale, seed) ever
//!   produces a different graph, stale entries miss instead of
//!   replaying the wrong work.
//!
//! Entries that fail to load (missing, truncated, or written by an
//! incompatible serde layout) are treated as misses; [`TraceCache::store`]
//! is best-effort and atomic (write to a temporary file, then rename),
//! so concurrent study workers and crashed runs never leave a corrupt
//! entry behind. The JSON round-trip is exact — `serde_json`'s
//! `float_roundtrip` feature is enabled workspace-wide — so a dataset
//! priced from cached traces is byte-identical to a cold run.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use gpp_obs::metrics;
use gpp_sim::trace::{Trace, RECORDER_VERSION};

use crate::inputs::{StudyInput, StudyScale};

/// A directory of serialized traces, keyed by trace content hash.
#[derive(Debug, Clone)]
pub struct TraceCache {
    dir: PathBuf,
}

impl TraceCache {
    /// Opens (creating if needed) a cache rooted at `dir`.
    ///
    /// # Errors
    ///
    /// Propagates the failure to create the directory.
    pub fn new(dir: &Path) -> io::Result<TraceCache> {
        std::fs::create_dir_all(dir)?;
        Ok(TraceCache {
            dir: dir.to_path_buf(),
        })
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The content key of one (application, input) trace: an FNV-1a hash
    /// over the application name, its
    /// [`content_version`](crate::app::Application::content_version),
    /// input name, scale, generation seed, graph shape, and
    /// [`RECORDER_VERSION`].
    ///
    /// `version` exists for applications whose *definition* can change
    /// without recompiling the crate — a DSL app folds a content hash of
    /// its compiled program in here, so editing the program invalidates
    /// its entries instead of serving a stale trace.
    pub fn key(app: &str, version: u64, input: &StudyInput, scale: StudyScale, seed: u64) -> u64 {
        let scale_tag: u8 = match scale {
            StudyScale::Full => 0,
            StudyScale::Small => 1,
            StudyScale::Tiny => 2,
        };
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
        for byte in app
            .bytes()
            .chain([0])
            .chain(version.to_le_bytes())
            .chain(input.name.bytes())
            .chain([0, scale_tag])
            .chain(seed.to_le_bytes())
            .chain((input.graph.num_nodes() as u64).to_le_bytes())
            .chain((input.graph.num_edges() as u64).to_le_bytes())
            .chain(RECORDER_VERSION.to_le_bytes())
        {
            h ^= byte as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// The on-disk path of one entry. The human-readable prefix is for
    /// directory listings; the hash alone keys the entry.
    pub fn entry_path(
        &self,
        app: &str,
        version: u64,
        input: &StudyInput,
        scale: StudyScale,
        seed: u64,
    ) -> PathBuf {
        let key = Self::key(app, version, input, scale, seed);
        self.dir
            .join(format!("{app}-{}-{key:016x}.trace.json", input.name))
    }

    /// Loads the cached trace for one (application, input) pair, or
    /// `None` on any miss — absent, unreadable, or undeserialisable
    /// entries all count as misses.
    pub fn load(
        &self,
        app: &str,
        version: u64,
        input: &StudyInput,
        scale: StudyScale,
        seed: u64,
    ) -> Option<Trace> {
        let loaded: Option<Trace> =
            std::fs::read_to_string(self.entry_path(app, version, input, scale, seed))
            .ok()
            .and_then(|text| {
                metrics::counter("trace_cache.bytes_read", text.len() as u64);
                serde_json::from_str(&text).ok()
            });
        match &loaded {
            Some(_) => metrics::counter("trace_cache.hits", 1),
            None => metrics::counter("trace_cache.misses", 1),
        }
        loaded
    }

    /// Stores one recorded trace, atomically (temporary file + rename)
    /// so concurrent workers and interrupted runs never leave a partial
    /// entry. Best-effort: returns whether the entry was written, and
    /// never fails the study over a read-only or full cache directory.
    pub fn store(
        &self,
        app: &str,
        version: u64,
        input: &StudyInput,
        scale: StudyScale,
        seed: u64,
        trace: &Trace,
    ) -> bool {
        // A process-wide counter keeps concurrent stores (and re-stores
        // of the same key) from colliding on the temporary name.
        static TMP_SERIAL: AtomicU64 = AtomicU64::new(0);
        let Ok(json) = serde_json::to_string(trace) else {
            return false;
        };
        metrics::counter("trace_cache.bytes_written", json.len() as u64);
        let path = self.entry_path(app, version, input, scale, seed);
        let tmp = path.with_extension(format!(
            "tmp.{}.{}",
            std::process::id(),
            TMP_SERIAL.fetch_add(1, Ordering::Relaxed)
        ));
        if std::fs::write(&tmp, json).is_err() {
            return false;
        }
        let renamed = std::fs::rename(&tmp, &path).is_ok();
        if !renamed {
            std::fs::remove_file(&tmp).ok();
        }
        renamed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::all_applications;
    use crate::inputs::study_inputs;
    use gpp_sim::exec::Executor as _;
    use gpp_sim::trace::Recorder;

    fn temp_cache(tag: &str) -> TraceCache {
        let dir = std::env::temp_dir().join(format!("gpp-trace-cache-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        TraceCache::new(&dir).expect("create cache dir")
    }

    #[test]
    fn round_trip_is_exact() {
        let cache = temp_cache("round-trip");
        let inputs = study_inputs(StudyScale::Tiny, 7);
        let input = &inputs[0];
        let apps = all_applications();
        let app = &apps[0];
        let mut rec = Recorder::new();
        app.run(&input.graph, &mut rec);
        let trace = rec.into_trace();

        let v = app.content_version();
        assert!(cache.load(app.name(), v, input, StudyScale::Tiny, 7).is_none());
        assert!(cache.store(app.name(), v, input, StudyScale::Tiny, 7, &trace));
        let back = cache
            .load(app.name(), v, input, StudyScale::Tiny, 7)
            .expect("hit after store");
        assert_eq!(trace, back);
        // Exact at the byte level too, not just structurally.
        assert_eq!(
            serde_json::to_string(&trace).unwrap(),
            serde_json::to_string(&back).unwrap()
        );
        std::fs::remove_dir_all(cache.dir()).ok();
    }

    #[test]
    fn keys_separate_every_dimension() {
        let inputs = study_inputs(StudyScale::Tiny, 7);
        let other_seed = study_inputs(StudyScale::Tiny, 8);
        let small = study_inputs(StudyScale::Small, 7);
        let base = TraceCache::key("bfs-wl", 0, &inputs[0], StudyScale::Tiny, 7);
        assert_ne!(base, TraceCache::key("bfs-td", 0, &inputs[0], StudyScale::Tiny, 7));
        assert_ne!(base, TraceCache::key("bfs-wl", 1, &inputs[0], StudyScale::Tiny, 7));
        assert_ne!(base, TraceCache::key("bfs-wl", 0, &inputs[1], StudyScale::Tiny, 7));
        assert_ne!(base, TraceCache::key("bfs-wl", 0, &other_seed[0], StudyScale::Tiny, 8));
        assert_ne!(base, TraceCache::key("bfs-wl", 0, &small[0], StudyScale::Small, 7));
        // Deterministic across calls.
        assert_eq!(base, TraceCache::key("bfs-wl", 0, &inputs[0], StudyScale::Tiny, 7));
    }

    #[test]
    fn editing_a_dsl_program_changes_the_key() {
        // The ISSUE-9 regression: before content versioning, two DSL
        // apps with the same name but different programs shared a cache
        // key, so editing a program could serve the old program's trace.
        let inputs = study_inputs(StudyScale::Tiny, 7);
        let apps = crate::dsl::dsl_applications();
        let versions: Vec<u64> = apps.iter().map(|a| a.content_version()).collect();
        // Every built-in program hashes differently.
        let mut sorted = versions.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), versions.len());
        // A different version under the same app name is a different key
        // (and a different entry path, so the old file cannot be read).
        for (app, &v) in apps.iter().zip(&versions) {
            let base = TraceCache::key(app.name(), v, &inputs[0], StudyScale::Tiny, 7);
            let edited = TraceCache::key(app.name(), v ^ 1, &inputs[0], StudyScale::Tiny, 7);
            assert_ne!(base, edited, "{}", app.name());
        }
        // Stable across calls: the OnceLock'd compile yields one hash.
        for (app, &v) in apps.iter().zip(&versions) {
            assert_eq!(app.content_version(), v, "{}", app.name());
        }
        // Handwritten apps default to version 0.
        assert_eq!(all_applications()[0].content_version(), 0);
    }

    #[test]
    fn corrupt_entries_are_misses() {
        let cache = temp_cache("corrupt");
        let inputs = study_inputs(StudyScale::Tiny, 7);
        let input = &inputs[0];
        let mut rec = Recorder::new();
        rec.kernel(
            &gpp_sim::exec::KernelProfile::frontier("k"),
            &[gpp_sim::exec::WorkItem::new(3, 1)],
        );
        let trace = rec.into_trace();
        assert!(cache.store("bfs-wl", 0, input, StudyScale::Tiny, 7, &trace));
        let path = cache.entry_path("bfs-wl", 0, input, StudyScale::Tiny, 7);
        std::fs::write(&path, "{not json").unwrap();
        assert!(cache.load("bfs-wl", 0, input, StudyScale::Tiny, 7).is_none());
        std::fs::remove_dir_all(cache.dir()).ok();
    }
}

//! The 17 graph applications of the study, "compiled" against the
//! abstract GPU machine, plus the experiment grid that collects the
//! paper's timing dataset.
//!
//! - [`app`] — the [`app::Application`] trait, output
//!   validation against sequential references, and the seven problems of
//!   paper Table VII;
//! - [`apps`] — the implementations: BFS ×5, CC ×2, MIS ×2, MST ×2,
//!   PR ×3, SSSP ×2, TRI ×1;
//! - [`kernels`] — the kernel operation-count profiles the applications
//!   are compiled to;
//! - [`cache`] — the persistent on-disk trace cache (`gpp study
//!   --trace-cache`);
//! - [`dsl`] — the seven `gpp_irgl` DSL programs as opt-in study
//!   applications, bytecode-compiled once per study (`gpp study --dsl`);
//! - [`inputs`] — the three study inputs (road / social / random);
//! - [`par`] — the scoped-thread parallel map the grid runner fans out
//!   with (re-exported from the `gpp-par` utility crate, which also
//!   serves `gpp-core`'s analysis pipeline);
//! - [`study`] — the grid runner producing the [`study::Dataset`]
//!   consumed by `gpp-core`'s portability analysis;
//! - [`sweep`] — the parametric chip sweep: replay the trace arena
//!   against a synthetic chip cloud, chip-major, one traversal per
//!   geometry family (`gpp sweep`).
//!
//! # Example
//!
//! ```
//! use gpp_apps::apps::bfs::BfsWl;
//! use gpp_apps::app::Application;
//! use gpp_graph::generators;
//! use gpp_sim::chip::ChipProfile;
//! use gpp_sim::exec::Machine;
//! use gpp_sim::opts::{OptConfig, Optimization};
//!
//! let graph = generators::rmat(8, 8, 1)?;
//! let machine = Machine::new(ChipProfile::r9());
//!
//! let mut base = machine.session(OptConfig::baseline());
//! BfsWl.run(&graph, &mut base);
//!
//! let mut tuned = machine.session(OptConfig::baseline().with(Optimization::Fg8));
//! BfsWl.run(&graph, &mut tuned);
//!
//! // Load balancing pays off on the skewed social input.
//! assert!(tuned.elapsed_ns() < base.elapsed_ns());
//! # Ok::<(), gpp_graph::GraphError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod app;
pub mod apps;
pub mod cache;
pub mod dsl;
pub mod inputs;
pub mod kernels;
pub mod par;
pub mod study;
pub mod sweep;

pub use app::{AppOutput, Application, Problem};
pub use apps::{all_applications, application};
pub use cache::TraceCache;
pub use dsl::{dsl_applications, DslApp};
pub use inputs::{study_inputs, study_inputs_extended, StudyInput, StudyScale};
pub use study::{
    run_study, run_study_cached, run_study_on, run_study_traced, Cell, Dataset, StudyConfig,
};
pub use sweep::{
    price_cloud, price_cloud_cached, run_sweep, run_sweep_cached, ChipSweep, CloudTimes,
    SweepConfig,
};

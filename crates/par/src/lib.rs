//! Minimal work-stealing-free parallel map over a slice, built on
//! [`std::thread::scope`].
//!
//! Both the study grid (`gpp-apps`) and the statistical analysis
//! (`gpp-core`) need the same single primitive: apply a pure function to
//! every element of a slice and collect the results *in input order*.
//! Workers pull indices from a shared atomic counter (dynamic
//! scheduling, so uneven items — big traces, slow chips, large
//! partitions — balance out) and results are scattered back to their
//! input slots, so the output is independent of scheduling. No external
//! runtime dependency is needed.
//!
//! This crate sits below `gpp-apps` in the workspace DAG so that
//! `gpp-core` (which `gpp-apps` does not depend on) can fan out its
//! analysis passes without inverting any crate dependency. `gpp-apps`
//! re-exports the map under its historical `gpp_apps::par` path.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use gpp_obs::metrics;
use gpp_obs::Tracer;

/// Resolves a requested worker-thread count the way the whole workspace
/// does: a positive request is taken literally, `0` falls back to the
/// `GPP_STUDY_THREADS` environment variable if it parses to a positive
/// number, and otherwise to the machine's available parallelism.
///
/// The result is always at least 1. Callers that accept `--threads 0`
/// (the CLI default) should resolve through this before handing the
/// count to [`par_map`], which treats any value `<= 1` as "run inline".
#[must_use]
pub fn effective_threads(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    if let Ok(v) = std::env::var("GPP_STUDY_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Maps `f` over `items` on up to `threads` worker threads, returning
/// the results in input order.
///
/// `f` receives `(index, &item)`. With `threads <= 1` (or a single
/// item) the map runs inline on the caller's thread — the closure
/// executes on exactly the same items in the same per-item way either
/// way, so results never depend on the thread count.
///
/// # Panics
///
/// If `f` panics for any item, the panic is propagated to the caller
/// with its original payload (after the remaining workers finish).
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = threads.clamp(1, items.len().max(1));
    if threads == 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let per_worker: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let (next, f) = (&next, &f);
                scope.spawn(move || {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        out.push((i, f(i, &items[i])));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(v) => v,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    for (i, r) in per_worker.into_iter().flatten() {
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every index processed exactly once"))
        .collect()
}

/// Emits one worker's busy time to every listening backend: a
/// `busy-ns` trace counter (detail = `label`) for [`gpp_obs::TraceSummary`]
/// / the phase profiler, and a `par.worker_busy_ns` histogram sample in
/// the process-wide metrics registry.
fn report_worker_busy(tracer: &Tracer, label: &str, busy_ns: f64) {
    tracer.counter("busy-ns", Some(label), busy_ns);
    metrics::observe("par.worker_busy_ns", busy_ns);
}

/// [`par_map`] with per-worker busy-time instrumentation: each worker
/// emits one `busy-ns` counter (detail = `label`) totalling the time it
/// spent inside `f`, so a [`gpp_obs::TraceSummary`] can report thread
/// utilisation for the phase. When the process-wide
/// [`gpp_obs::metrics`] registry is enabled, the same busy times also
/// land in the `par.worker_busy_ns` histogram, each fan-out counts its
/// items into `par.tasks`, and `par.workers` records the widest pool
/// used.
///
/// With a disabled tracer and disabled metrics this delegates to
/// [`par_map`] directly — no timestamps are taken and no overhead is
/// paid. The output is the results in input order either way, exactly
/// as [`par_map`] returns them, and `f` is applied to the same items in
/// the same per-item way regardless of instrumentation or thread count.
///
/// # Panics
///
/// Propagates panics from `f` exactly as [`par_map`] does.
pub fn par_map_traced<T, R, F>(
    items: &[T],
    threads: usize,
    tracer: &Tracer,
    label: &str,
    f: F,
) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    if !tracer.is_enabled() && !metrics::enabled() {
        return par_map(items, threads, f);
    }
    let threads = threads.clamp(1, items.len().max(1));
    metrics::counter("par.tasks", items.len() as u64);
    metrics::gauge_max("par.workers", threads as f64);
    if threads == 1 {
        let start = Instant::now();
        let out: Vec<R> = items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        report_worker_busy(tracer, label, start.elapsed().as_nanos() as f64);
        return out;
    }
    let next = AtomicUsize::new(0);
    let per_worker: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let (next, f, tracer) = (&next, &f, tracer);
                scope.spawn(move || {
                    let mut out = Vec::new();
                    let mut busy_ns = 0u128;
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        let start = Instant::now();
                        out.push((i, f(i, &items[i])));
                        busy_ns += start.elapsed().as_nanos();
                    }
                    report_worker_busy(tracer, label, busy_ns as f64);
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(v) => v,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    for (i, r) in per_worker.into_iter().flatten() {
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every index processed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpp_obs::MemorySink;
    use std::sync::Arc;

    #[test]
    fn results_are_in_input_order() {
        let items: Vec<u64> = (0..1000).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [0, 1, 2, 7, 64] {
            assert_eq!(par_map(&items, threads, |_, &x| x * x), expect);
        }
    }

    #[test]
    fn indices_match_items() {
        let items: Vec<usize> = (0..257).collect();
        let out = par_map(&items, 4, |i, &x| (i, x));
        assert!(out.iter().all(|&(i, x)| i == x));
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<u32> = par_map(&[] as &[u32], 8, |_, &x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn traced_map_matches_untraced_and_reports_busy_counters() {
        let items: Vec<u64> = (0..500).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * 3).collect();
        for threads in [1, 4] {
            let sink = Arc::new(MemorySink::new());
            let tracer = Tracer::new(sink.clone());
            let out = par_map_traced(&items, threads, &tracer, "triple", |_, &x| x * 3);
            assert_eq!(out, expect);
            let events = sink.take();
            assert_eq!(events.len(), threads, "one busy counter per worker");
            assert!(events
                .iter()
                .all(|e| e.name == "busy-ns" && e.detail.as_deref() == Some("triple")));
        }
        // Disabled tracer: pure delegation, no events anywhere.
        let out = par_map_traced(&items, 4, &Tracer::disabled(), "triple", |_, &x| x * 3);
        assert_eq!(out, expect);
    }

    #[test]
    fn metrics_enabled_map_records_busy_tasks_and_workers() {
        // Uses the process-wide registry, so assert monotonically —
        // other tests in this binary may record too.
        let m = metrics::global();
        m.set_enabled(true);
        let items: Vec<u64> = (0..100).collect();
        let expect: Vec<u64> = items.iter().map(|x| x + 1).collect();
        let out = par_map_traced(&items, 4, &Tracer::disabled(), "metrics-only", |_, &x| x + 1);
        m.set_enabled(false);
        assert_eq!(out, expect);
        let snap = m.snapshot();
        assert!(snap.counters["par.tasks"] >= 100);
        assert!(snap.gauges["par.workers"] >= 4.0);
        assert!(snap.histograms["par.worker_busy_ns"].count >= 1);
    }

    #[test]
    #[should_panic(expected = "boom 3")]
    fn worker_panics_propagate_with_payload() {
        let items: Vec<usize> = (0..16).collect();
        par_map(&items, 4, |_, &x| {
            if x == 3 {
                panic!("boom {x}");
            }
            x
        });
    }

    #[test]
    fn effective_threads_resolution() {
        assert_eq!(effective_threads(3), 3);
        assert_eq!(effective_threads(1), 1);
        // 0 resolves to *something* positive (env var or machine width).
        assert!(effective_threads(0) >= 1);
    }
}

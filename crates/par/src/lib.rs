//! The workspace's parallel executor: a persistent worker pool for
//! `'static` fan-outs plus a chunked scoped fallback for borrowed ones.
//!
//! Both the study grid (`gpp-apps`) and the statistical analysis
//! (`gpp-core`) need the same single primitive: apply a pure function to
//! every element of a slice and collect the results *in input order*.
//! Two engines provide it:
//!
//! * **The persistent pool** ([`par_map_pooled`] /
//!   [`par_map_pooled_traced`], see [`pool`]): a process-wide set of
//!   worker threads, spawned lazily on first use and parked on a condvar
//!   between calls, that executes chunked map jobs from one shared
//!   queue. Submitting a job costs a queue push and a wake-up instead of
//!   `threads` OS-thread spawns, which is what makes many small
//!   fan-outs (the per-cell analysis tables, a future `gpp serve`
//!   worker pool) cheap. Jobs must be `'static`: the items live in an
//!   [`Arc`] and the closure owns everything it captures.
//! * **The scoped engine** ([`par_map`] / [`par_map_traced`]): for
//!   closures that borrow from the caller's stack. Workers are spawned
//!   per call with [`std::thread::scope`] — under
//!   `#![forbid(unsafe_code)]` that is the only way a thread may touch
//!   non-`'static` borrows, because the scope is what proves the
//!   borrow outlives the worker. The engine still claims *chunks* of
//!   the index space (not one item per atomic bump), the calling
//!   thread participates as the last worker (so only `threads - 1`
//!   threads are spawned), and per-chunk results are concatenated in
//!   chunk order (no tagged-pair vector, no `Vec<Option<R>>` scatter).
//!
//! Scheduling never influences results: chunks tile the index space
//! deterministically, each item is mapped exactly once by `f(i, &items[i])`,
//! and chunk outputs are reassembled in index order, so every engine —
//! inline, scoped, pooled, at any thread count — returns byte-identical
//! output for a pure `f`.
//!
//! Nested calls are cooperative. A `par_map` issued from inside any
//! parallel worker runs inline on that worker (its items are already
//! one chunk of a wider fan-out; spawning again would oversubscribe),
//! while a nested [`par_map_pooled`] submits to the same shared queue —
//! idle pool workers help with the inner job, and the submitting worker
//! drives it to completion itself, so progress never depends on pool
//! capacity. Both are counted by the `par.nested_calls` metric.
//!
//! This crate sits below `gpp-apps` in the workspace DAG so that
//! `gpp-core` (which `gpp-apps` does not depend on) can fan out its
//! analysis passes without inverting any crate dependency. `gpp-apps`
//! re-exports the maps under its historical `gpp_apps::par` path.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod pool;

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

use gpp_obs::metrics;
use gpp_obs::Tracer;

pub use pool::{par_map_pooled, par_map_pooled_traced, pool_workers_spawned};

/// The `GPP_STUDY_THREADS` override, parsed from the environment exactly
/// once per process (see [`effective_threads`]).
static ENV_THREADS: OnceLock<Option<usize>> = OnceLock::new();

/// Resolves a requested worker-thread count the way the whole workspace
/// does: a positive request is taken literally, `0` falls back to the
/// `GPP_STUDY_THREADS` environment variable if it parses to a positive
/// number, and otherwise to the machine's available parallelism.
///
/// The environment variable is read **once** — the first `0` resolution
/// parses it and caches the result for the life of the process, so a
/// long-running server answers every call consistently and the hot path
/// never touches the environment again. Changing `GPP_STUDY_THREADS`
/// after that first read has no effect on the running process.
///
/// The result is always at least 1. Callers that accept `--threads 0`
/// (the CLI default) should resolve through this before handing the
/// count to [`par_map`], which treats any value `<= 1` as "run inline".
#[must_use]
pub fn effective_threads(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    let env = *ENV_THREADS.get_or_init(|| {
        std::env::var("GPP_STUDY_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
    });
    env.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    })
}

thread_local! {
    /// Whether this thread is currently executing inside a gpp-par
    /// worker context (a pool worker, a scoped worker, or a caller
    /// participating in its own fan-out).
    static IN_PAR_CONTEXT: Cell<bool> = const { Cell::new(false) };
}

/// RAII guard marking the current thread as a parallel worker; restores
/// the previous state on drop so top-level calls issued later from the
/// same (caller) thread fan out normally again.
pub(crate) struct ParContextGuard {
    prev: bool,
}

pub(crate) fn enter_par_context() -> ParContextGuard {
    IN_PAR_CONTEXT.with(|c| {
        let prev = c.get();
        c.set(true);
        ParContextGuard { prev }
    })
}

impl Drop for ParContextGuard {
    fn drop(&mut self) {
        let prev = self.prev;
        IN_PAR_CONTEXT.with(|c| c.set(prev));
    }
}

/// Whether the current thread is already inside a parallel worker — used
/// to make nested fan-outs cooperative instead of oversubscribing.
#[must_use]
pub fn in_par_context() -> bool {
    IN_PAR_CONTEXT.with(Cell::get)
}

/// Chunk size for claiming index ranges: roughly four chunks per worker,
/// coarse enough to amortise the claim (one atomic or one lock per
/// chunk instead of per item), fine enough that uneven items — big
/// traces, slow chips, large partitions — still balance. Small inputs
/// degrade to one item per claim, exactly the historical per-item
/// dynamic schedule.
pub(crate) fn chunk_size(len: usize, threads: usize) -> usize {
    (len / (threads * 4).max(1)).max(1)
}

/// Reassembles per-chunk outputs into the input-order result vector.
/// Chunks tile `0..len` disjointly, so sorting by start offset and
/// concatenating is exact — no per-item tags, no `Option` unwrap pass.
pub(crate) fn assemble<R>(len: usize, mut chunks: Vec<(usize, Vec<R>)>) -> Vec<R> {
    chunks.sort_unstable_by_key(|&(start, _)| start);
    let mut out = Vec::with_capacity(len);
    for (start, chunk) in chunks {
        debug_assert_eq!(start, out.len(), "chunks must tile the index space");
        out.extend(chunk);
    }
    debug_assert_eq!(out.len(), len, "every index mapped exactly once");
    out
}

/// Maps every item inline on the current thread.
pub(crate) fn map_inline<T, R, F>(items: &[T], f: &F) -> Vec<R>
where
    F: Fn(usize, &T) -> R,
{
    items.iter().enumerate().map(|(i, t)| f(i, t)).collect()
}

/// Emits one worker's busy time to every listening backend: a
/// `busy-ns` trace counter (detail = `label`) for [`gpp_obs::TraceSummary`]
/// / the phase profiler, and a `par.worker_busy_ns` histogram sample in
/// the process-wide metrics registry.
pub(crate) fn report_worker_busy(tracer: &Tracer, label: &str, busy_ns: f64) {
    tracer.counter("busy-ns", Some(label), busy_ns);
    metrics::observe("par.worker_busy_ns", busy_ns);
}

/// The scoped engine: `threads - 1` scoped workers plus the calling
/// thread claim chunks from a shared atomic cursor and collect each
/// chunk's results in order. Only called with `threads >= 2`.
fn run_scoped<T, R, F>(
    items: &[T],
    threads: usize,
    trace: Option<(&Tracer, &str)>,
    f: &F,
) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let len = items.len();
    let chunk = chunk_size(len, threads);
    let next = AtomicUsize::new(0);
    let timed = trace.is_some();
    // One worker body, run by every scoped thread and by the caller:
    // claim a chunk, map it, keep the (start, results) pair. Every
    // worker reports one busy-ns total when traced, even an idle one,
    // so a traced fan-out always shows `threads` busy counters.
    let run_worker = || {
        let _guard = enter_par_context();
        let mut chunks: Vec<(usize, Vec<R>)> = Vec::new();
        let mut busy_ns = 0u128;
        loop {
            let start = next.fetch_add(chunk, Ordering::Relaxed);
            if start >= len {
                break;
            }
            let end = (start + chunk).min(len);
            metrics::counter("par.chunks_claimed", 1);
            let t0 = timed.then(Instant::now);
            let mut out = Vec::with_capacity(end - start);
            for (i, item) in items.iter().enumerate().take(end).skip(start) {
                out.push(f(i, item));
            }
            if let Some(t0) = t0 {
                busy_ns += t0.elapsed().as_nanos();
            }
            chunks.push((start, out));
        }
        if let Some((tracer, label)) = trace {
            report_worker_busy(tracer, label, busy_ns as f64);
        }
        chunks
    };
    let collected: Vec<(usize, Vec<R>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (1..threads).map(|_| scope.spawn(run_worker)).collect();
        // The caller participates before joining, so the fan-out always
        // makes progress even if thread spawning is slow or denied.
        let mut all = run_worker();
        for h in handles {
            match h.join() {
                Ok(chunks) => all.extend(chunks),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        all
    });
    assemble(len, collected)
}

/// Maps `f` over `items` on up to `threads` worker threads, returning
/// the results in input order.
///
/// `f` receives `(index, &item)`. With `threads <= 1` (or a single
/// item) the map runs inline on the caller's thread — the closure
/// executes on exactly the same items in the same per-item way either
/// way, so results never depend on the thread count. A call issued from
/// inside another parallel worker also runs inline (cooperative nested
/// parallelism: the caller is already one lane of a wider fan-out), and
/// is counted by the `par.nested_calls` metric.
///
/// Because `f` and `items` may borrow from the caller's stack, workers
/// are scoped threads spawned per call (`threads - 1` of them — the
/// caller is the last worker). Fan-outs whose state is shareable as
/// `'static` should prefer [`par_map_pooled`], which reuses the
/// persistent pool instead of spawning.
///
/// # Panics
///
/// If `f` panics for any item, the panic is propagated to the caller
/// with its original payload (after the remaining workers finish).
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = threads.clamp(1, items.len().max(1));
    if threads == 1 {
        return map_inline(items, &f);
    }
    if in_par_context() {
        metrics::counter("par.nested_calls", 1);
        return map_inline(items, &f);
    }
    run_scoped(items, threads, None, &f)
}

/// [`par_map`] with per-worker busy-time instrumentation: each worker
/// emits one `busy-ns` counter (detail = `label`) totalling the time it
/// spent inside `f`, so a [`gpp_obs::TraceSummary`] can report thread
/// utilisation for the phase. When the process-wide
/// [`gpp_obs::metrics`] registry is enabled, the same busy times also
/// land in the `par.worker_busy_ns` histogram, each fan-out counts its
/// items into `par.tasks`, chunk claims into `par.chunks_claimed`, and
/// `par.workers` records the widest fan-out used.
///
/// With a disabled tracer and disabled metrics this delegates to
/// [`par_map`] directly — no timestamps are taken and no overhead is
/// paid. The output is the results in input order either way, exactly
/// as [`par_map`] returns them, and `f` is applied to the same items in
/// the same per-item way regardless of instrumentation or thread count.
///
/// # Panics
///
/// Propagates panics from `f` exactly as [`par_map`] does.
pub fn par_map_traced<T, R, F>(
    items: &[T],
    threads: usize,
    tracer: &Tracer,
    label: &str,
    f: F,
) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    if !tracer.is_enabled() && !metrics::enabled() {
        return par_map(items, threads, f);
    }
    let threads = threads.clamp(1, items.len().max(1));
    metrics::counter("par.tasks", items.len() as u64);
    metrics::gauge_max("par.workers", threads as f64);
    let nested = in_par_context();
    if threads == 1 || nested {
        if nested {
            metrics::counter("par.nested_calls", 1);
        }
        let start = Instant::now();
        let out = map_inline(items, &f);
        report_worker_busy(tracer, label, start.elapsed().as_nanos() as f64);
        return out;
    }
    run_scoped(items, threads, Some((tracer, label)), &f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpp_obs::MemorySink;
    use std::sync::Arc;

    #[test]
    fn results_are_in_input_order() {
        let items: Vec<u64> = (0..1000).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [0, 1, 2, 7, 64] {
            assert_eq!(par_map(&items, threads, |_, &x| x * x), expect);
        }
    }

    #[test]
    fn indices_match_items() {
        let items: Vec<usize> = (0..257).collect();
        let out = par_map(&items, 4, |i, &x| (i, x));
        assert!(out.iter().all(|&(i, x)| i == x));
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<u32> = par_map(&[] as &[u32], 8, |_, &x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn chunk_sizes_cover_all_shapes() {
        // Tiny inputs degrade to per-item claiming; big ones amortise.
        assert_eq!(chunk_size(3, 8), 1);
        assert_eq!(chunk_size(0, 4), 1);
        assert_eq!(chunk_size(1024, 4), 64);
        // A chunked walk tiles the space exactly.
        for (len, threads) in [(1usize, 2usize), (17, 4), (304, 8), (1000, 3)] {
            let chunk = chunk_size(len, threads);
            let covered: usize = (0..len).step_by(chunk).map(|s| (s + chunk).min(len) - s).sum();
            assert_eq!(covered, len);
        }
    }

    #[test]
    fn assemble_restores_input_order() {
        let chunks = vec![(4usize, vec![4, 5, 6]), (0, vec![0, 1]), (2, vec![2, 3])];
        assert_eq!(assemble(7, chunks), vec![0, 1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn nested_par_map_runs_inline_on_a_worker() {
        let outer: Vec<u64> = (0..16).collect();
        let expect: Vec<u64> = outer.iter().map(|x| x * 10 + 45).collect();
        let out = par_map(&outer, 4, |_, &x| {
            let inner: Vec<u64> = (0..10).collect();
            // Inside a scoped worker (or the participating caller) this
            // must not spawn again; it runs inline and stays correct.
            assert!(in_par_context());
            let partial = par_map(&inner, 8, |_, &y| y);
            x * 10 + partial.iter().sum::<u64>()
        });
        assert_eq!(out, expect);
        assert!(!in_par_context(), "context flag is restored afterwards");
    }

    #[test]
    fn traced_map_matches_untraced_and_reports_busy_counters() {
        let items: Vec<u64> = (0..500).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * 3).collect();
        for threads in [1, 4] {
            let sink = Arc::new(MemorySink::new());
            let tracer = Tracer::new(sink.clone());
            let out = par_map_traced(&items, threads, &tracer, "triple", |_, &x| x * 3);
            assert_eq!(out, expect);
            let events = sink.take();
            assert_eq!(events.len(), threads, "one busy counter per worker");
            assert!(events
                .iter()
                .all(|e| e.name == "busy-ns" && e.detail.as_deref() == Some("triple")));
        }
        // Disabled tracer: pure delegation, no events anywhere.
        let out = par_map_traced(&items, 4, &Tracer::disabled(), "triple", |_, &x| x * 3);
        assert_eq!(out, expect);
    }

    #[test]
    fn metrics_enabled_map_records_busy_tasks_and_workers() {
        // Uses the process-wide registry, so assert monotonically —
        // other tests in this binary may record too.
        let m = metrics::global();
        m.set_enabled(true);
        let items: Vec<u64> = (0..100).collect();
        let expect: Vec<u64> = items.iter().map(|x| x + 1).collect();
        let out = par_map_traced(&items, 4, &Tracer::disabled(), "metrics-only", |_, &x| x + 1);
        m.set_enabled(false);
        assert_eq!(out, expect);
        let snap = m.snapshot();
        assert!(snap.counters["par.tasks"] >= 100);
        assert!(snap.counters["par.chunks_claimed"] >= 1);
        assert!(snap.gauges["par.workers"] >= 4.0);
        assert!(snap.histograms["par.worker_busy_ns"].count >= 1);
    }

    #[test]
    #[should_panic(expected = "boom 3")]
    fn worker_panics_propagate_with_payload() {
        let items: Vec<usize> = (0..16).collect();
        par_map(&items, 4, |_, &x| {
            if x == 3 {
                panic!("boom {x}");
            }
            x
        });
    }

    #[test]
    fn effective_threads_resolution() {
        assert_eq!(effective_threads(3), 3);
        assert_eq!(effective_threads(1), 1);
        // 0 resolves to *something* positive (env var or machine width),
        // and — because the parse is cached — to the same something every
        // time.
        let first = effective_threads(0);
        assert!(first >= 1);
        assert_eq!(effective_threads(0), first);
    }
}

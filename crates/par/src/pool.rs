//! The persistent worker pool: spawn once, park cheaply, schedule
//! adaptively, stay observable.
//!
//! # Lifecycle
//!
//! One pool exists per process, behind a [`OnceLock`]. No thread is
//! spawned until the first pooled fan-out asks for one; after that the
//! pool grows monotonically to the widest `threads` request seen
//! (capped at [`MAX_POOL_WORKERS`]) and is never torn down — idle
//! workers park on a condvar, costing nothing until the next job wakes
//! them. Per-call `threads` caps bound how many workers may *join a
//! given job* (via participation tickets) without shrinking the pool.
//! Each spawn increments the `par.pool_spawns` metric, each wake from
//! the condvar increments `par.wakeups`.
//!
//! # Scheduling
//!
//! A job is one chunked map: a shared cursor over `0..items.len()` that
//! participants advance by [`crate::chunk_size`]-sized ranges, with each
//! chunk's results kept as an ordered `(start, Vec<R>)` run and
//! reassembled by [`crate::assemble`]. The submitting thread always
//! participates in its own job — correctness and termination never
//! depend on pool capacity (a submitter alone finishes the job; if
//! thread spawning fails entirely the pool degrades to inline
//! execution). Workers scan the shared queue front-to-back and help the
//! first job that still has unclaimed chunks and a free ticket.
//!
//! # Nested fan-out
//!
//! A pooled map submitted from *inside* a pool worker goes onto the
//! same shared queue: idle siblings help with the inner job while the
//! submitting worker drives it to completion. Termination is inductive
//! — a submitter only blocks once every chunk of its job is claimed,
//! and every claimed chunk is being executed by a thread that is
//! itself making progress — so arbitrary nesting depth is safe as long
//! as `f` terminates and does not block on events outside the pool.
//!
//! # Why jobs must be `'static`
//!
//! Under `#![forbid(unsafe_code)]` a long-lived thread may only touch
//! `'static` data: nothing can prove to the type system that a borrow
//! of a caller's stack outlives a worker that survives the call. Items
//! therefore live in an [`Arc`] and the closure owns its captures;
//! borrowed fan-outs take the scoped engine ([`crate::par_map`])
//! instead, whose per-call `thread::scope` is exactly that proof.

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Instant;

use gpp_obs::metrics;
use gpp_obs::Tracer;

use crate::{
    assemble, chunk_size, enter_par_context, in_par_context, map_inline, report_worker_busy,
};

/// Hard ceiling on pool width, a backstop against absurd `--threads`
/// values; the pool never spawns more workers than this.
pub const MAX_POOL_WORKERS: usize = 256;

/// What the queue and the workers see of a job: claim-and-run chunks
/// (`help`), and report whether any chunk is still claimable
/// (`wants_help`) so scans can skip finished or fully-ticketed jobs.
trait Task: Send + Sync {
    /// Runs chunks of this task on the current thread until none are
    /// left to claim (or, for an external worker, until the ticket cap
    /// rejects it).
    fn help(&self, external: bool);
    /// Whether an external worker could still be useful here.
    fn wants_help(&self) -> bool;
    /// Whether every chunk has been claimed (the queue can drop it).
    fn drained(&self) -> bool;
}

/// Mutable state of one chunked map job, guarded by one mutex that is
/// taken twice per *chunk* (claim and completion) — never per item.
struct MapState<R> {
    /// Next unclaimed index.
    next: usize,
    /// Chunks claimed but not yet completed.
    in_flight: usize,
    /// Completed chunks as (start, results) runs.
    chunks: Vec<(usize, Vec<R>)>,
    /// First panic payload observed in `f`, if any.
    panic: Option<Box<dyn Any + Send>>,
    /// Set once a chunk panicked: no further chunks are claimed.
    cancelled: bool,
}

/// One pooled fan-out: shared items, the map closure, and the chunk
/// cursor / result / completion machinery.
struct MapJob<T, R, F> {
    items: Arc<Vec<T>>,
    f: F,
    chunk: usize,
    state: Mutex<MapState<R>>,
    /// Signalled when the job is drained and the last in-flight chunk
    /// completes.
    done: Condvar,
    /// Remaining tickets for *external* participants (pool workers).
    /// The submitter needs no ticket, so a call with `threads = n`
    /// runs on at most `n` threads at once.
    external_slots: AtomicUsize,
    /// Busy-time instrumentation: tracer and phase label.
    trace: Option<(Tracer, String)>,
}

impl<T, R, F> MapJob<T, R, F>
where
    T: Send + Sync + 'static,
    R: Send + 'static,
    F: Fn(usize, &T) -> R + Send + Sync + 'static,
{
    /// Blocks until the job is drained and no chunk is in flight.
    fn wait_done(&self) {
        let len = self.items.len();
        let mut st = self.state.lock().expect("pool job state poisoned");
        while st.in_flight > 0 || !(st.cancelled || st.next >= len) {
            st = self.done.wait(st).expect("pool job state poisoned");
        }
    }

    /// Takes the assembled output, or the first panic payload.
    fn take_output(&self) -> Result<Vec<R>, Box<dyn Any + Send>> {
        let mut st = self.state.lock().expect("pool job state poisoned");
        if let Some(payload) = st.panic.take() {
            return Err(payload);
        }
        let chunks = std::mem::take(&mut st.chunks);
        Ok(assemble(self.items.len(), chunks))
    }
}

impl<T, R, F> Task for MapJob<T, R, F>
where
    T: Send + Sync + 'static,
    R: Send + 'static,
    F: Fn(usize, &T) -> R + Send + Sync + 'static,
{
    fn help(&self, external: bool) {
        if external {
            // Acquire a participation ticket; give it back on the way
            // out so a departing worker frees capacity mid-job (only
            // relevant if it leaves early — normally departure means
            // the job is drained anyway).
            let got = self
                .external_slots
                .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| n.checked_sub(1));
            if got.is_err() {
                return;
            }
        }
        let _guard = enter_par_context();
        let len = self.items.len();
        let timed = self.trace.is_some();
        let mut busy_ns = 0u128;
        let mut claimed_any = false;
        loop {
            let (start, end) = {
                let mut st = self.state.lock().expect("pool job state poisoned");
                if st.cancelled || st.next >= len {
                    break;
                }
                let start = st.next;
                let end = (start + self.chunk).min(len);
                st.next = end;
                st.in_flight += 1;
                (start, end)
            };
            claimed_any = true;
            metrics::counter("par.chunks_claimed", 1);
            let t0 = timed.then(Instant::now);
            let result = catch_unwind(AssertUnwindSafe(|| {
                let mut out = Vec::with_capacity(end - start);
                for i in start..end {
                    out.push((self.f)(i, &self.items[i]));
                }
                out
            }));
            if let Some(t0) = t0 {
                busy_ns += t0.elapsed().as_nanos();
            }
            let notify = {
                let mut st = self.state.lock().expect("pool job state poisoned");
                st.in_flight -= 1;
                match result {
                    Ok(out) => st.chunks.push((start, out)),
                    Err(payload) => {
                        st.cancelled = true;
                        if st.panic.is_none() {
                            st.panic = Some(payload);
                        }
                    }
                }
                st.in_flight == 0 && (st.cancelled || st.next >= len)
            };
            if notify {
                self.done.notify_all();
            }
        }
        if external {
            self.external_slots.fetch_add(1, Ordering::AcqRel);
        }
        if (claimed_any || !external) && timed {
            if let Some((tracer, label)) = &self.trace {
                report_worker_busy(tracer, label, busy_ns as f64);
            }
        }
    }

    fn wants_help(&self) -> bool {
        if self.external_slots.load(Ordering::Acquire) == 0 {
            return false;
        }
        let st = self.state.lock().expect("pool job state poisoned");
        !st.cancelled && st.next < self.items.len()
    }

    fn drained(&self) -> bool {
        let st = self.state.lock().expect("pool job state poisoned");
        st.cancelled || st.next >= self.items.len()
    }
}

/// Shared pool state: the job queue, the parking condvar, and the count
/// of spawned workers.
struct PoolInner {
    queue: Mutex<Vec<Arc<dyn Task>>>,
    available: Condvar,
    spawned: Mutex<usize>,
}

/// The process-wide persistent pool handle.
pub(crate) struct Pool {
    inner: Arc<PoolInner>,
}

static POOL: OnceLock<Pool> = OnceLock::new();

impl Pool {
    pub(crate) fn global() -> &'static Pool {
        POOL.get_or_init(|| Pool {
            inner: Arc::new(PoolInner {
                queue: Mutex::new(Vec::new()),
                available: Condvar::new(),
                spawned: Mutex::new(0),
            }),
        })
    }

    /// Grows the pool so at least `want` workers exist (bounded by
    /// [`MAX_POOL_WORKERS`]). Spawn failure is tolerated: the submitter
    /// always executes its own job, so a resource-starved process
    /// degrades to fewer helpers, not to an error.
    fn ensure_workers(&self, want: usize) {
        let want = want.min(MAX_POOL_WORKERS);
        let mut spawned = self.inner.spawned.lock().expect("pool spawn count poisoned");
        while *spawned < want {
            let inner = Arc::clone(&self.inner);
            let build = std::thread::Builder::new()
                .name(format!("gpp-par-{}", *spawned))
                .spawn(move || worker_loop(&inner));
            match build {
                Ok(_) => {
                    *spawned += 1;
                    metrics::counter("par.pool_spawns", 1);
                }
                Err(_) => break,
            }
        }
    }

    /// Number of workers spawned so far (for tests and diagnostics).
    pub(crate) fn workers_spawned(&self) -> usize {
        *self.inner.spawned.lock().expect("pool spawn count poisoned")
    }

    /// Enqueues a job and wakes the pool. `width` is the call's
    /// `threads` request; the pool grows towards `width - 1` helpers.
    fn submit(&self, task: Arc<dyn Task>, width: usize) {
        self.ensure_workers(width.saturating_sub(1));
        {
            let mut queue = self.inner.queue.lock().expect("pool queue poisoned");
            queue.push(task);
        }
        self.inner.available.notify_all();
    }

    /// Drops finished jobs from the queue so their items/results free
    /// promptly; called by the submitter after its job completes.
    fn sweep(&self) {
        let mut queue = self.inner.queue.lock().expect("pool queue poisoned");
        queue.retain(|t| !t.drained());
    }
}

/// What every pool worker runs forever: find a job that wants help,
/// help until it is drained, park when the queue has nothing claimable.
fn worker_loop(inner: &PoolInner) {
    let _guard = enter_par_context();
    loop {
        let task: Arc<dyn Task> = {
            let mut queue = inner.queue.lock().expect("pool queue poisoned");
            loop {
                queue.retain(|t| !t.drained());
                if let Some(task) = queue.iter().find(|t| t.wants_help()) {
                    break Arc::clone(task);
                }
                queue = inner.available.wait(queue).expect("pool queue poisoned");
                metrics::counter("par.wakeups", 1);
            }
        };
        task.help(true);
    }
}

/// Number of pool workers spawned so far in this process. Exposed so
/// tests can assert that repeated pooled calls reuse the pool instead
/// of spawning per call.
#[must_use]
pub fn pool_workers_spawned() -> usize {
    Pool::global().workers_spawned()
}

/// The pooled engine core shared by [`par_map_pooled`] and
/// [`par_map_pooled_traced`]. `threads >= 2` and `len >= 2` here.
fn run_pooled<T, R, F>(
    items: &Arc<Vec<T>>,
    threads: usize,
    trace: Option<(Tracer, String)>,
    f: F,
) -> Vec<R>
where
    T: Send + Sync + 'static,
    R: Send + 'static,
    F: Fn(usize, &T) -> R + Send + Sync + 'static,
{
    if in_par_context() {
        metrics::counter("par.nested_calls", 1);
    }
    let job = Arc::new(MapJob {
        items: Arc::clone(items),
        f,
        chunk: chunk_size(items.len(), threads),
        state: Mutex::new(MapState {
            next: 0,
            in_flight: 0,
            chunks: Vec::new(),
            panic: None,
            cancelled: false,
        }),
        done: Condvar::new(),
        external_slots: AtomicUsize::new(threads - 1),
        trace,
    });
    let pool = Pool::global();
    pool.submit(Arc::clone(&job) as Arc<dyn Task>, threads);
    // The submitter drives its own job: by the time help() returns,
    // every chunk is claimed; then wait for stragglers to finish theirs.
    job.help(false);
    job.wait_done();
    pool.sweep();
    match job.take_output() {
        Ok(out) => out,
        Err(payload) => std::panic::resume_unwind(payload),
    }
}

/// [`crate::par_map`] over shared `'static` items, executed by the
/// persistent worker pool instead of per-call scoped threads.
///
/// Results are returned in input order and are byte-identical to an
/// inline map at any thread count: chunks tile the index space
/// deterministically and each item is mapped exactly once by
/// `f(i, &items[i])`. With `threads <= 1` (or fewer than two items) the
/// map runs inline on the caller's thread and the pool is not touched.
///
/// The calling thread always participates, so the call completes even
/// if every pool worker is busy (or none could be spawned). `threads`
/// caps how many pool workers may join this particular call; it does
/// not resize or tear down the pool. A nested call from inside a pool
/// worker submits to the same shared queue — idle workers help, the
/// submitter drives — so nested fan-outs compose without
/// oversubscribing.
///
/// # Panics
///
/// If `f` panics for any item, no further chunks are claimed and the
/// first panic payload is re-raised on the caller after in-flight
/// chunks finish.
pub fn par_map_pooled<T, R, F>(items: &Arc<Vec<T>>, threads: usize, f: F) -> Vec<R>
where
    T: Send + Sync + 'static,
    R: Send + 'static,
    F: Fn(usize, &T) -> R + Send + Sync + 'static,
{
    let threads = threads.clamp(1, items.len().max(1));
    if threads == 1 {
        return map_inline(items, &f);
    }
    run_pooled(items, threads, None, f)
}

/// [`par_map_pooled`] with the same busy-time instrumentation as
/// [`crate::par_map_traced`]: every participant that did work emits one
/// `busy-ns` counter (detail = `label`) and a `par.worker_busy_ns`
/// histogram sample, the fan-out counts its items into `par.tasks`,
/// and `par.workers` records the widest fan-out used. Because pool
/// participation is dynamic, a traced pooled fan-out emits *up to*
/// `threads` busy counters (at least one — the submitter's).
///
/// With a disabled tracer and disabled metrics this delegates to
/// [`par_map_pooled`] directly. The output is byte-identical either
/// way.
///
/// # Panics
///
/// Propagates panics from `f` exactly as [`par_map_pooled`] does.
pub fn par_map_pooled_traced<T, R, F>(
    items: &Arc<Vec<T>>,
    threads: usize,
    tracer: &Tracer,
    label: &str,
    f: F,
) -> Vec<R>
where
    T: Send + Sync + 'static,
    R: Send + 'static,
    F: Fn(usize, &T) -> R + Send + Sync + 'static,
{
    if !tracer.is_enabled() && !metrics::enabled() {
        return par_map_pooled(items, threads, f);
    }
    let threads = threads.clamp(1, items.len().max(1));
    metrics::counter("par.tasks", items.len() as u64);
    metrics::gauge_max("par.workers", threads as f64);
    if threads == 1 {
        let start = Instant::now();
        let out = map_inline(items, &f);
        report_worker_busy(tracer, label, start.elapsed().as_nanos() as f64);
        return out;
    }
    run_pooled(
        items,
        threads,
        Some((tracer.clone(), label.to_owned())),
        f,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpp_obs::MemorySink;

    #[test]
    fn pooled_map_matches_inline_at_many_widths() {
        let items: Arc<Vec<u64>> = Arc::new((0..1000).collect());
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [0, 1, 2, 3, 7, 64] {
            assert_eq!(par_map_pooled(&items, threads, |_, &x| x * x), expect);
        }
    }

    #[test]
    fn pooled_indices_match_items() {
        let items: Arc<Vec<usize>> = Arc::new((0..257).collect());
        let out = par_map_pooled(&items, 4, |i, &x| (i, x));
        assert!(out.iter().all(|&(i, x)| i == x));
    }

    #[test]
    fn pooled_empty_and_singleton_inputs() {
        let empty: Arc<Vec<u32>> = Arc::new(Vec::new());
        let out: Vec<u32> = par_map_pooled(&empty, 8, |_, &x| x);
        assert!(out.is_empty());
        let one: Arc<Vec<u32>> = Arc::new(vec![9]);
        assert_eq!(par_map_pooled(&one, 8, |_, &x| x + 1), vec![10]);
    }

    #[test]
    fn pooled_traced_emits_busy_counters() {
        let items: Arc<Vec<u64>> = Arc::new((0..500).collect());
        let expect: Vec<u64> = items.iter().map(|x| x * 3).collect();
        let sink = Arc::new(MemorySink::new());
        let tracer = Tracer::new(sink.clone());
        let out = par_map_pooled_traced(&items, 4, &tracer, "triple", |_, &x| x * 3);
        assert_eq!(out, expect);
        let events = sink.take();
        assert!(
            !events.is_empty() && events.len() <= 4,
            "between one and `threads` busy counters, got {}",
            events.len()
        );
        assert!(events
            .iter()
            .all(|e| e.name == "busy-ns" && e.detail.as_deref() == Some("triple")));
    }

    #[test]
    #[should_panic(expected = "pooled boom 7")]
    fn pooled_panics_propagate_with_payload() {
        let items: Arc<Vec<usize>> = Arc::new((0..64).collect());
        par_map_pooled(&items, 4, |_, &x| {
            if x == 7 {
                panic!("pooled boom {x}");
            }
            x
        });
    }

    #[test]
    fn pool_is_reused_and_bounded() {
        let items: Arc<Vec<u64>> = Arc::new((0..64).collect());
        for _ in 0..32 {
            let _ = par_map_pooled(&items, 4, |_, &x| x + 1);
        }
        assert!(
            pool_workers_spawned() <= MAX_POOL_WORKERS,
            "pool never exceeds its ceiling"
        );
    }
}

//! Criterion benches for the statistical core: the Mann–Whitney U test,
//! Algorithm 1 over a study-scale dataset, and strategy construction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpp_apps::study::{run_study, StudyConfig};
use gpp_core::analysis::{opts_for_partition, DatasetStats};
use gpp_core::stats::mann_whitney_u;
use gpp_core::strategy::{build_assignment, Strategy};
use gpp_graph::rng::Rng64;
use std::hint::black_box;

fn bench_mwu(c: &mut Criterion) {
    let mut group = c.benchmark_group("mann_whitney_u");
    for &n in &[10usize, 100, 1_000, 10_000] {
        let mut rng = Rng64::new(42);
        let a: Vec<f64> = (0..n).map(|_| 0.9 + 0.2 * rng.next_f64()).collect();
        let b: Vec<f64> = vec![1.0; n];
        group.bench_with_input(BenchmarkId::from_parameter(n), &(a, b), |bench, (a, b)| {
            bench.iter(|| mann_whitney_u(black_box(a), black_box(b)).expect("non-empty"));
        });
    }
    group.finish();
}

fn bench_algorithm1(c: &mut Criterion) {
    // A tiny-scale study has the same shape (306 cells x 96 configs) as
    // the full one; only the traces are smaller.
    let ds = run_study(&StudyConfig::tiny());
    let stats = DatasetStats::new(&ds);
    let all: Vec<usize> = (0..stats.num_cells()).collect();
    c.bench_function("opts_for_partition_306_cells", |b| {
        b.iter(|| opts_for_partition(black_box(&stats), black_box(&all)));
    });
}

fn bench_strategies(c: &mut Criterion) {
    let ds = run_study(&StudyConfig::tiny());
    let stats = DatasetStats::new(&ds);
    let mut group = c.benchmark_group("build_assignment");
    group.sample_size(20);
    for s in [
        Strategy::Global,
        Strategy::Chip,
        Strategy::AppInput,
        Strategy::ChipAppInput,
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(s.name()), &s, |b, &s| {
            b.iter(|| build_assignment(black_box(&stats), s));
        });
    }
    group.finish();
}

fn bench_stats_cache(c: &mut Criterion) {
    let ds = run_study(&StudyConfig::tiny());
    c.bench_function("dataset_stats_build", |b| {
        b.iter(|| DatasetStats::new(black_box(&ds)));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_mwu, bench_algorithm1, bench_strategies, bench_stats_cache
}
criterion_main!(benches);

//! The study-grid bench: serial vs parallel grid collection, individual
//! vs batched 96-configuration cell pricing, the instrumentation
//! overhead of pipeline tracing, the serial vs parallel analysis
//! pipeline (strategy spectrum and sensitivity sweep), and the
//! executor itself — the persistent worker pool vs per-call scoped
//! spawning on a many-small-calls workload.
//!
//! Criterion groups measure the small-scale grid (fast enough to
//! sample repeatedly). After the criterion run, a one-shot baseline of
//! the *full-scale* study — serial wall-clock vs parallel wall-clock
//! for both grid collection and the analysis pipeline, plus
//! byte-identity checks and the traced-run overhead — is written to
//! `BENCH_study.json` at the repository root. Set `GPP_BENCH_SCALE` to
//! `small`/`tiny` for a quicker baseline, or pass `--smoke` to skip
//! criterion and write a tiny-scale baseline under `target/`.
//!
//! ```sh
//! cargo bench --bench study_grid
//! cargo bench --bench study_grid -- --smoke   # fast end-to-end check
//! ```

use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use criterion::{criterion_group, Criterion};
use gpp_apps::apps::all_applications;
use gpp_apps::cache::TraceCache;
use gpp_apps::inputs::{study_inputs, StudyScale};
use gpp_apps::par::{par_map, par_map_pooled};
use gpp_apps::study::{run_study, run_study_cached, run_study_traced, StudyConfig};
use gpp_core::analysis::DatasetStats;
use gpp_core::portfolio::{
    exact_search, score_portfolio_naive, search_curve, Objective, PortfolioScorer, SearchParams,
    SlowdownMatrix,
};
use gpp_core::predict::leave_one_out_par;
use gpp_core::sensitivity::{subsample_sensitivity, subsample_sensitivity_par};
use gpp_core::strategy::{
    build_assignment, build_assignment_par, chip_function_par, Strategy,
};
use gpp_graph::generators;
use gpp_irgl::bytecode::{CompiledProgram, KernelVm};
use gpp_irgl::native::NativeVm;
use gpp_irgl::{interp, programs};
use gpp_obs::{metrics, MemorySink, NullSink, Tracer};
use gpp_sim::chip::{latin_hypercube_chips, study_chips, ChipBatch};
use gpp_sim::exec::{CallAggregates, Machine, RunStats};
use gpp_sim::opts::all_configs;
use gpp_sim::trace::{geometry_groups, CompiledTrace, Recorder};

/// Counting wrapper around the system allocator: the baseline writer
/// uses the allocation count to prove the portfolio scorer's hot path
/// allocates nothing after its scratch buffer warms up.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn small(threads: usize) -> StudyConfig {
    StudyConfig {
        threads,
        ..StudyConfig::small()
    }
}

fn bench_study_grid(c: &mut Criterion) {
    let mut group = c.benchmark_group("study_grid");
    group.sample_size(10);
    group.bench_function("small_serial", |b| b.iter(|| run_study(&small(1))));
    group.bench_function("small_parallel", |b| b.iter(|| run_study(&small(0))));
    group.finish();
}

fn bench_tracing_overhead(c: &mut Criterion) {
    // What the observability layer costs: a disabled tracer (the
    // default path, which must be free), a null sink (pays event
    // construction and timestamps but discards them), and an in-memory
    // sink (pays buffering too).
    let chips = study_chips();
    let mut group = c.benchmark_group("study_tracing_overhead");
    group.sample_size(10);
    group.bench_function("tracer_disabled", |b| {
        b.iter(|| run_study_traced(&small(0), &chips, &Tracer::disabled()))
    });
    group.bench_function("null_sink", |b| {
        b.iter(|| run_study_traced(&small(0), &chips, &Tracer::new(Arc::new(NullSink))))
    });
    group.bench_function("memory_sink", |b| {
        b.iter(|| {
            let sink = Arc::new(MemorySink::new());
            let ds = run_study_traced(&small(0), &chips, &Tracer::new(sink.clone()));
            (ds, sink.take().len())
        })
    });
    group.finish();
}

fn bench_metrics_overhead(c: &mut Criterion) {
    // What the metrics registry costs: the disabled fast path (one
    // relaxed atomic load per call site, which must be effectively
    // free) vs recording every pipeline counter and latency histogram
    // into per-thread shards. The baseline writer turns the same
    // comparison into the committed `metrics_overhead_fraction`.
    let registry = metrics::global();
    let mut group = c.benchmark_group("study_metrics_overhead");
    group.sample_size(10);
    group.bench_function("metrics_disabled", |b| b.iter(|| run_study(&small(0))));
    group.bench_function("metrics_enabled", |b| {
        registry.reset();
        registry.set_enabled(true);
        b.iter(|| run_study(&small(0)));
        registry.set_enabled(false);
    });
    group.finish();
}

fn bench_cell_pricing(c: &mut Criterion) {
    // One (application, input) trace on one chip: price all 96
    // configurations by individual replays vs one batched traversal.
    let inputs = study_inputs(StudyScale::Small, 0x9a7e_2019);
    let input = &inputs[0];
    let apps = all_applications();
    let app = &apps[0];
    let mut rec = Recorder::new();
    app.run(&input.graph, &mut rec);
    let compiled = CompiledTrace::new(rec.into_trace());
    let machine = Machine::new(study_chips().remove(0));
    compiled.precompile(&machine);

    let mut group = c.benchmark_group("cell_pricing_96_configs");
    group.bench_function("individual_replays", |b| {
        b.iter(|| {
            all_configs()
                .into_iter()
                .map(|cfg| compiled.replay(&machine, cfg).time_ns)
                .sum::<f64>()
        })
    });
    group.bench_function("batched_replay", |b| {
        b.iter(|| {
            compiled
                .replay_all_configs(&machine)
                .iter()
                .map(|s| s.time_ns)
                .sum::<f64>()
        })
    });
    group.finish();
}

fn bench_analysis_pipeline(c: &mut Criterion) {
    // The analysis layer alone, on a dataset collected once up front:
    // the full strategy spectrum and a sensitivity sweep, serial vs
    // fanned out. Outputs are byte-identical; only wall-clock differs.
    let ds = run_study(&StudyConfig::tiny());
    let stats = DatasetStats::new(&ds);
    let threads = StudyConfig::tiny().effective_threads();
    let disabled = Tracer::disabled();
    let mut group = c.benchmark_group("analysis_pipeline");
    group.sample_size(10);
    group.bench_function("spectrum_serial", |b| {
        b.iter(|| {
            Strategy::ALL
                .into_iter()
                .map(|s| build_assignment(&stats, s).configs().len())
                .sum::<usize>()
        })
    });
    group.bench_function("spectrum_parallel", |b| {
        b.iter(|| {
            Strategy::ALL
                .into_iter()
                .map(|s| build_assignment_par(&stats, s, threads, &disabled).configs().len())
                .sum::<usize>()
        })
    });
    group.bench_function("sensitivity_serial", |b| {
        b.iter(|| subsample_sensitivity(&ds, &[0.5], 2, 7))
    });
    group.bench_function("sensitivity_parallel", |b| {
        b.iter(|| subsample_sensitivity_par(&ds, &[0.5], 2, 7, threads, &disabled))
    });
    group.finish();
}

fn bench_chip_sweep(c: &mut Criterion) {
    // Pricing a synthetic chip cloud against one compiled trace: the
    // per-chip oracle loop vs the chip-major batched traversal. Both
    // produce bit-identical times; only the walk count differs.
    let inputs = study_inputs(StudyScale::Tiny, 0x9a7e_2019);
    let apps = all_applications();
    let mut rec = Recorder::new();
    apps[0].run(&inputs[0].graph, &mut rec);
    let compiled = CompiledTrace::new(rec.into_trace());
    let cloud = latin_hypercube_chips(96, 0x9a7e_2019);
    let batches = ChipBatch::partition(&cloud);
    let reps: Vec<Machine> = batches
        .iter()
        .map(|b| Machine::new(b.chips()[0].clone()))
        .collect();
    compiled.precompile_all(&reps);

    let mut group = c.benchmark_group("chip_sweep");
    group.sample_size(10);
    group.bench_function("per_chip_loop", |b| {
        b.iter(|| {
            cloud
                .iter()
                .map(|chip| {
                    compiled
                        .replay_all_configs(&Machine::new(chip.clone()))
                        .iter()
                        .map(|s| s.time_ns)
                        .sum::<f64>()
                })
                .sum::<f64>()
        })
    });
    group.bench_function("chip_major_batched", |b| {
        b.iter(|| {
            batches
                .iter()
                .map(|batch| {
                    compiled
                        .replay_all_configs_many_chips(batch)
                        .iter()
                        .flatten()
                        .map(|s| s.time_ns)
                        .sum::<f64>()
                })
                .sum::<f64>()
        })
    });
    group.finish();
}

fn bench_portfolio_search(c: &mut Criterion) {
    // The portfolio engine's two layers: scoring (dense matrix vs the
    // naive per-cell DatasetStats oracle on the same portfolios) and
    // search (exact branch-and-bound at k=3 over the full grid, and a
    // six-point curve with the beam levels included).
    let ds = run_study(&StudyConfig::tiny());
    let stats = DatasetStats::new(&ds);
    let matrix = Arc::new(SlowdownMatrix::from_stats(&stats));
    let pairs: Vec<Vec<usize>> = (0..96usize)
        .flat_map(|a| ((a + 1)..96).step_by(19).map(move |b| vec![a, b]))
        .collect();
    let all96: Vec<usize> = (0..96).collect();
    let mut group = c.benchmark_group("portfolio_search");
    group.sample_size(10);
    group.bench_function("matrix_scorer_pairs", |b| {
        let mut scorer = PortfolioScorer::new(&matrix);
        b.iter(|| {
            pairs
                .iter()
                .map(|p| scorer.score(p, Objective::Geomean))
                .sum::<f64>()
        })
    });
    group.bench_function("naive_scorer_pairs", |b| {
        b.iter(|| {
            pairs
                .iter()
                .map(|p| score_portfolio_naive(&stats, p, Objective::Geomean))
                .sum::<f64>()
        })
    });
    group.bench_function("exact_k3_full_grid", |b| {
        b.iter(|| exact_search(&matrix, &all96, 3, Objective::Geomean, 0).slowdown)
    });
    group.bench_function("curve_k6_beam32", |b| {
        let params = SearchParams {
            objective: Objective::Geomean,
            k_max: 6,
            exact_k_max: 3,
            beam_width: 32,
            threads: 0,
        };
        b.iter(|| search_curve(&matrix, &params).points.len())
    });
    group.finish();
}

/// The per-item map the executor benches apply: cheap, pure, and
/// index-dependent, so the work itself is negligible next to scheduling
/// and the outputs still detect any ordering mistake.
fn par_bench_item(i: usize, x: u64) -> u64 {
    x.wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .rotate_left((i % 63) as u32)
}

fn bench_par_overhead(c: &mut Criterion) {
    // The executor itself, isolated: many small fan-outs (one per
    // analysis table, pair, or portfolio candidate — the paper grid's
    // 304-pair shape) where per-call thread spawning dominates real
    // work. The pooled engine pays a queue push and a condvar wake per
    // call; the scoped engine pays `threads - 1` OS-thread spawns.
    let items: Arc<Vec<u64>> = Arc::new((0..304).collect());
    let threads = 4;
    // Spawn the pool's workers outside the timed region.
    let _ = par_map_pooled(&items, threads, |i, &x| par_bench_item(i, x));
    let mut group = c.benchmark_group("par_overhead");
    group.bench_function("pooled_many_small_calls", |b| {
        b.iter(|| {
            par_map_pooled(&items, threads, |i, &x| par_bench_item(i, x))
                .iter()
                .fold(0u64, |acc, v| acc ^ v)
        })
    });
    group.bench_function("scoped_many_small_calls", |b| {
        b.iter(|| {
            par_map(&items, threads, |i, &x| par_bench_item(i, x))
                .iter()
                .fold(0u64, |acc, v| acc ^ v)
        })
    });
    group.finish();
}

fn bench_interp_vs_bytecode(c: &mut Criterion) {
    // Cold-path trace collection through the DSL: the tree-walking
    // oracle, the bytecode VM on a precompiled program (the steady
    // state of a study run, where each program compiles once), and the
    // VM including compilation (the true cold cost of a single run).
    let graph = generators::rmat(9, 6, 3).expect("valid");
    let mut group = c.benchmark_group("interp_vs_bytecode");
    group.sample_size(20);
    for program in programs::all() {
        let compiled = CompiledProgram::compile(&program).expect("valid");
        group.bench_with_input(
            criterion::BenchmarkId::new("ast_tree_walker", &program.name),
            &program,
            |b, program| {
                b.iter(|| {
                    let mut rec = Recorder::new();
                    interp::execute_ast(black_box(program), black_box(&graph), &mut rec)
                        .expect("runs")
                        .iterations
                });
            },
        );
        group.bench_with_input(
            criterion::BenchmarkId::new("bytecode_precompiled", &program.name),
            &compiled,
            |b, compiled| {
                let mut vm = KernelVm::new();
                b.iter(|| {
                    let mut rec = Recorder::new();
                    vm.run(black_box(compiled), black_box(&graph), &mut rec)
                        .expect("runs")
                        .iterations
                });
            },
        );
        group.bench_with_input(
            criterion::BenchmarkId::new("bytecode_with_compile", &program.name),
            &program,
            |b, program| {
                b.iter(|| {
                    let mut rec = Recorder::new();
                    let compiled = CompiledProgram::compile(black_box(program)).expect("valid");
                    KernelVm::new()
                        .run(&compiled, black_box(&graph), &mut rec)
                        .expect("runs")
                        .iterations
                });
            },
        );
    }
    group.finish();
}

fn bench_bytecode_vs_native(c: &mut Criterion) {
    // One tier below the VM: the same precompiled program on the same
    // graph, register-machine dispatch vs fused closures. Both VMs
    // reuse their scratch; the closure artifact is built outside the
    // timing loop (its one-time cost is `irgl_native_compile_all` in
    // the irgl bench).
    let graph = generators::rmat(9, 6, 3).expect("valid");
    let mut group = c.benchmark_group("bytecode_vs_native");
    group.sample_size(20);
    for program in programs::all() {
        let compiled = CompiledProgram::compile(&program).expect("valid");
        compiled.native();
        group.bench_with_input(
            criterion::BenchmarkId::new("bytecode", &program.name),
            &compiled,
            |b, compiled| {
                let mut vm = KernelVm::new();
                b.iter(|| {
                    let mut rec = Recorder::new();
                    vm.run(black_box(compiled), black_box(&graph), &mut rec)
                        .expect("runs")
                        .iterations
                });
            },
        );
        group.bench_with_input(
            criterion::BenchmarkId::new("native", &program.name),
            &compiled,
            |b, compiled| {
                let mut vm = NativeVm::new();
                b.iter(|| {
                    let mut rec = Recorder::new();
                    vm.run(black_box(compiled), black_box(&graph), &mut rec)
                        .expect("runs")
                        .iterations
                });
            },
        );
    }
    group.finish();
}

/// Times one serial and one parallel full run, checks they agree
/// exactly, and writes the `BENCH_study.json` baseline.
fn write_baseline() {
    let scale = std::env::var("GPP_BENCH_SCALE").unwrap_or_else(|_| "full".to_owned());
    let path =
        std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_study.json");
    write_baseline_to(&scale, &path);
}

fn write_baseline_to(scale: &str, path: &std::path::Path) {
    let cfg = match scale {
        "tiny" => StudyConfig::tiny(),
        "small" => StudyConfig::small(),
        _ => StudyConfig::default(),
    };
    let threads = cfg.effective_threads();
    eprintln!("[study_grid baseline: {scale} scale, serial vs {threads} threads]");

    let t = Instant::now();
    let serial = run_study(&StudyConfig { threads: 1, ..cfg });
    let serial_seconds = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let parallel = run_study(&StudyConfig { threads: 0, ..cfg });
    let parallel_seconds = t.elapsed().as_secs_f64();
    let identical = serial == parallel;

    // Instrumentation overhead: the same parallel run with every span
    // and counter recorded (and discarded by a null sink).
    let t = Instant::now();
    let traced = run_study_traced(
        &StudyConfig { threads: 0, ..cfg },
        &study_chips(),
        &Tracer::new(Arc::new(NullSink)),
    );
    let traced_seconds = t.elapsed().as_secs_f64();
    let traced_identical = traced == parallel;

    // Metrics-registry overhead: the same parallel run with every
    // pipeline counter, gauge, and latency histogram recorded into the
    // process-wide registry. The budget is <2% over the plain run.
    let registry = metrics::global();
    registry.reset();
    registry.set_enabled(true);
    let t = Instant::now();
    let metered = run_study(&StudyConfig { threads: 0, ..cfg });
    let metrics_seconds = t.elapsed().as_secs_f64();
    let metrics_snapshot = registry.snapshot();
    registry.set_enabled(false);
    let metrics_identical = metered == parallel;
    let metrics_overhead_fraction = metrics_seconds / parallel_seconds - 1.0;

    // The analysis pipeline over the collected dataset: strategy
    // spectrum, chip function, leave-one-out prediction, and the
    // sensitivity sweep, at one thread vs the fan-out width.
    let stats = DatasetStats::new(&serial);
    let disabled = Tracer::disabled();
    let run_analysis = |threads: usize| {
        let spectrum: Vec<_> = Strategy::ALL
            .into_iter()
            .map(|s| build_assignment_par(&stats, s, threads, &disabled))
            .collect();
        let chips = chip_function_par(&stats, threads, &disabled);
        let prediction = leave_one_out_par(&stats, 8, threads, &disabled);
        let sweep = subsample_sensitivity_par(&serial, &[0.5, 0.25], 3, 0x5eed, threads, &disabled);
        (spectrum, chips, prediction, sweep)
    };
    let t = Instant::now();
    let analysis_serial = run_analysis(1);
    let analysis_serial_seconds = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let analysis_parallel = run_analysis(threads);
    let analysis_parallel_seconds = t.elapsed().as_secs_f64();
    let analysis_identical = analysis_serial
        .0
        .iter()
        .zip(&analysis_parallel.0)
        .all(|(a, b)| a.configs() == b.configs() && a.partitions() == b.partitions())
        && analysis_serial.1 == analysis_parallel.1
        && analysis_serial.2 == analysis_parallel.2
        && analysis_serial.3 == analysis_parallel.3;

    // Trace-substrate metrics: arena compactness, the single-pass
    // multi-geometry aggregation win, and the persistent cache's
    // warm-run wall-clock.
    let inputs = study_inputs(cfg.scale, cfg.seed);
    let mut traces = Vec::new();
    let t = Instant::now();
    for app in all_applications() {
        for input in &inputs {
            let mut rec = Recorder::new();
            app.run(&input.graph, &mut rec);
            traces.push(rec.into_trace());
        }
    }
    let collect_traces_cold_seconds = t.elapsed().as_secs_f64();
    let total_items: usize = traces.iter().map(|t| t.num_items()).sum();
    let total_bytes: usize = traces.iter().map(|t| t.arena_bytes()).sum();
    let trace_arena_bytes_per_item = total_bytes as f64 / total_items.max(1) as f64;

    // The union of (workgroup, subgroup) geometries the study chips
    // price: the single-pass builder walks each frontier once for all
    // of them, the reference builder once per geometry.
    let mut geometries: Vec<(u32, u32)> = Vec::new();
    for chip in study_chips() {
        for (wg, _) in geometry_groups(&chip).iter() {
            let g = (*wg, chip.subgroup_size);
            if !geometries.contains(&g) {
                geometries.push(g);
            }
        }
    }
    let t = Instant::now();
    for trace in &traces {
        for call in trace.calls() {
            for &(wg, sg) in &geometries {
                std::hint::black_box(CallAggregates::from_items(call.items, wg, sg));
            }
        }
    }
    let per_geometry_seconds = t.elapsed().as_secs_f64();
    let t = Instant::now();
    for trace in &traces {
        for call in trace.calls() {
            std::hint::black_box(CallAggregates::from_items_multi(call.items, &geometries));
        }
    }
    let single_pass_seconds = t.elapsed().as_secs_f64();

    // DSL executor A/B over the study inputs: the tree-walking oracle
    // vs the bytecode VM vs the native closure tier, each in its study
    // configuration (every program compiled once, one VM's scratch
    // buffers reused across runs, the closure artifacts prebuilt).
    let dsl = programs::all();
    let t = Instant::now();
    for program in &dsl {
        for input in &inputs {
            let mut rec = Recorder::new();
            black_box(interp::execute_ast(program, &input.graph, &mut rec).expect("runs"));
        }
    }
    let dsl_ast_seconds = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let compiled_dsl: Vec<CompiledProgram> = dsl
        .iter()
        .map(|p| CompiledProgram::compile(p).expect("valid"))
        .collect();
    let mut vm = KernelVm::new();
    for compiled in &compiled_dsl {
        for input in &inputs {
            let mut rec = Recorder::new();
            black_box(vm.run(compiled, &input.graph, &mut rec).expect("runs"));
        }
    }
    let dsl_bytecode_seconds = t.elapsed().as_secs_f64();
    for compiled in &compiled_dsl {
        compiled.native(); // fuse outside the timed region
    }
    let mut nvm = NativeVm::new();
    let t = Instant::now();
    for compiled in &compiled_dsl {
        for input in &inputs {
            let mut rec = Recorder::new();
            black_box(nvm.run(compiled, &input.graph, &mut rec).expect("runs"));
        }
    }
    let dsl_native_seconds = t.elapsed().as_secs_f64();
    let native_kernel_speedup = dsl_bytecode_seconds / dsl_native_seconds;
    // Untimed verification pass: the three tiers must agree bit for bit
    // on every (program, input) the timings above just ran.
    let dsl_identical = dsl.iter().zip(&compiled_dsl).all(|(program, compiled)| {
        inputs.iter().all(|input| {
            let mut ra = Recorder::new();
            let a = interp::execute_ast(program, &input.graph, &mut ra).expect("runs");
            let mut rb = Recorder::new();
            let b = vm.run(compiled, &input.graph, &mut rb).expect("runs");
            let mut rn = Recorder::new();
            let n = nvm.run(compiled, &input.graph, &mut rn).expect("runs");
            let bits = |e: &gpp_irgl::Execution| {
                e.fields
                    .iter()
                    .flatten()
                    .chain(e.globals.iter())
                    .map(|v| v.to_bits())
                    .collect::<Vec<u64>>()
            };
            let (ta, tb, tn) = (ra.into_trace(), rb.into_trace(), rn.into_trace());
            bits(&a) == bits(&b) && bits(&a) == bits(&n) && ta == tb && ta == tn
        })
    });

    // Cold run fills the cache under target/, warm run replays it; the
    // warm run must compile zero traces and reproduce the dataset
    // byte for byte.
    let cache_dir =
        std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/bench-trace-cache");
    std::fs::remove_dir_all(&cache_dir).ok();
    let cache = TraceCache::new(&cache_dir).expect("create bench trace cache");
    let chips = study_chips();
    let t = Instant::now();
    let cold = run_study_cached(
        &StudyConfig { threads: 0, ..cfg },
        &chips,
        &Tracer::disabled(),
        Some(&cache),
    );
    let trace_cache_cold_seconds = t.elapsed().as_secs_f64();
    let sink = Arc::new(MemorySink::new());
    let t = Instant::now();
    let warm = run_study_cached(
        &StudyConfig { threads: 0, ..cfg },
        &chips,
        &Tracer::new(sink.clone()),
        Some(&cache),
    );
    let trace_cache_hit_seconds = t.elapsed().as_secs_f64();
    let warm_compiled: f64 = sink
        .take()
        .iter()
        .filter(|e| e.name == "traces-compiled")
        .filter_map(|e| e.value)
        .sum();
    let cache_identical = cold == parallel && warm == parallel;

    // Chip-major batched pricing: a 1,000-chip latin-hypercube cloud
    // against one compiled trace (tiny scale, so the number isolates the
    // traversal structure, not the input size) — the per-chip oracle
    // loop vs one chip-major traversal per geometry family. The times
    // must agree bit for bit; the speedup is the headline number of the
    // `gpp sweep` fast path.
    let sweep_inputs = study_inputs(StudyScale::Tiny, cfg.seed);
    let sweep_trace = {
        let mut rec = Recorder::new();
        all_applications()[0].run(&sweep_inputs[0].graph, &mut rec);
        CompiledTrace::new(rec.into_trace())
    };
    let cloud = latin_hypercube_chips(1_000, 0x9a7e_2019);
    let cloud_batches = ChipBatch::partition(&cloud);
    let reps: Vec<Machine> = cloud_batches
        .iter()
        .map(|b| Machine::new(b.chips()[0].clone()))
        .collect();
    sweep_trace.precompile_all(&reps);
    let t = Instant::now();
    let cloud_per_chip: Vec<Vec<RunStats>> = cloud
        .iter()
        .map(|chip| sweep_trace.replay_all_configs(&Machine::new(chip.clone())))
        .collect();
    let chip_sweep_per_chip_seconds = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let mut cloud_batched: Vec<Vec<RunStats>> = vec![Vec::new(); cloud.len()];
    for batch in &cloud_batches {
        let priced = sweep_trace.replay_all_configs_many_chips(batch);
        for (&idx, stats) in batch.source_indices().iter().zip(priced) {
            cloud_batched[idx] = stats;
        }
    }
    let chip_sweep_batched_seconds = t.elapsed().as_secs_f64();
    let chip_batch_identical = cloud_per_chip.iter().zip(&cloud_batched).all(|(a, b)| {
        a.iter()
            .zip(b)
            .all(|(x, y)| x.time_ns.to_bits() == y.time_ns.to_bits())
    });
    let chip_sweep_chips_per_second = cloud.len() as f64 / chip_sweep_batched_seconds;
    let chip_batch_speedup = chip_sweep_per_chip_seconds / chip_sweep_batched_seconds;

    // Dense-matrix portfolio engine: the flattened slowdown matrix vs
    // the naive per-cell `DatasetStats` scorer (kept as the
    // differential oracle) over the full 96-configuration grid —
    // singletons plus a strided pair sample — then the exact k=3
    // branch-and-bound and the curve's thread invariance. The scorers
    // must agree bit for bit and the matrix hot path must not allocate
    // after its scratch buffer warms up.
    let portfolio_matrix = Arc::new(SlowdownMatrix::from_stats(&stats));
    let portfolio_workload: Vec<Vec<usize>> = (0..96usize)
        .map(|c| vec![c])
        .chain((0..96usize).flat_map(|a| ((a + 1)..96).step_by(7).map(move |b| vec![a, b])))
        .collect();
    let mut portfolio_scorer = PortfolioScorer::new(&portfolio_matrix);
    // One warm-up call sizes the scratch buffer; every later score must
    // be allocation-free.
    black_box(portfolio_scorer.score(&portfolio_workload[0], Objective::Geomean));
    let allocs_before = ALLOCATIONS.load(Ordering::Relaxed);
    const MATRIX_REPS: usize = 20;
    let mut matrix_sum = 0.0;
    let t = Instant::now();
    for _ in 0..MATRIX_REPS {
        for p in &portfolio_workload {
            matrix_sum += portfolio_scorer.score(p, Objective::Geomean);
        }
    }
    let portfolio_matrix_pass_seconds = t.elapsed().as_secs_f64() / MATRIX_REPS as f64;
    let portfolio_scorer_allocations = ALLOCATIONS.load(Ordering::Relaxed) - allocs_before;
    black_box(matrix_sum);
    let t = Instant::now();
    let naive_scores: Vec<f64> = portfolio_workload
        .iter()
        .map(|p| score_portfolio_naive(&stats, p, Objective::Geomean))
        .collect();
    let portfolio_naive_pass_seconds = t.elapsed().as_secs_f64();
    let portfolio_matrix_speedup = portfolio_naive_pass_seconds / portfolio_matrix_pass_seconds;
    let portfolio_scorers_identical = portfolio_workload.iter().zip(&naive_scores).all(
        |(p, naive)| {
            portfolio_scorer.score(p, Objective::Geomean).to_bits() == naive.to_bits()
        },
    );

    let all96: Vec<usize> = (0..96).collect();
    let t = Instant::now();
    let exact3 = exact_search(&portfolio_matrix, &all96, 3, Objective::Geomean, threads);
    let portfolio_exact_k3_seconds = t.elapsed().as_secs_f64();
    let curve_params = SearchParams {
        objective: Objective::Geomean,
        k_max: 6,
        exact_k_max: 3,
        beam_width: 32,
        threads: 1,
    };
    let portfolio_curve_serial = search_curve(&portfolio_matrix, &curve_params);
    let portfolio_curve_parallel = search_curve(
        &portfolio_matrix,
        &SearchParams {
            threads,
            ..curve_params
        },
    );
    let portfolio_curve_identical = portfolio_curve_serial == portfolio_curve_parallel;
    assert!(
        portfolio_scorers_identical,
        "matrix scorer must agree with the naive oracle bit for bit"
    );
    assert_eq!(
        portfolio_scorer_allocations, 0,
        "portfolio matrix scorer hot path must not allocate"
    );
    assert!(
        portfolio_matrix_speedup >= 10.0,
        "matrix-backed evaluation must be >= 10x the naive scorer, got {portfolio_matrix_speedup:.1}x"
    );
    assert!(
        exact3.slowdown.is_finite() && exact3.slowdown >= 1.0 && exact3.configs.len() == 3,
        "exact k=3 search must return a valid portfolio"
    );
    assert!(
        portfolio_curve_identical,
        "portfolio curve must be identical at any thread count"
    );
    eprintln!(
        "[portfolio: matrix {portfolio_matrix_pass_seconds:.4}s vs naive {portfolio_naive_pass_seconds:.4}s per pass ({portfolio_matrix_speedup:.1}x), exact k=3 {portfolio_exact_k3_seconds:.3}s, curve identical {portfolio_curve_identical}]"
    );

    // Executor overhead on the many-small-calls regime (304 items per
    // call — one paper-grid pair table per fan-out): the persistent
    // pool vs per-call scoped spawning, identical outputs required.
    let par_items: Arc<Vec<u64>> = Arc::new((0..304u64).collect());
    let par_threads = threads.clamp(2, 8);
    let par_calls = 400usize;
    // Spawn the pool's workers outside the timed region.
    let expect_par = par_map_pooled(&par_items, par_threads, |i, &x| par_bench_item(i, x));
    let t = Instant::now();
    for _ in 0..par_calls {
        let out = par_map_pooled(&par_items, par_threads, |i, &x| par_bench_item(i, x));
        black_box(&out);
        assert_eq!(out, expect_par, "pooled map must be deterministic");
    }
    let par_pooled_seconds = t.elapsed().as_secs_f64();
    let t = Instant::now();
    for _ in 0..par_calls {
        let out = par_map(&par_items, par_threads, |i, &x| par_bench_item(i, x));
        black_box(&out);
        assert_eq!(out, expect_par, "scoped map must equal the pooled map");
    }
    let par_scoped_seconds = t.elapsed().as_secs_f64();
    let pool_vs_scoped_speedup = par_scoped_seconds / par_pooled_seconds;
    let par_small_item_ns_per_item =
        par_pooled_seconds * 1e9 / (par_calls * par_items.len()) as f64;

    let baseline = serde_json::json!({
        "bench": "study_grid",
        "scale": scale,
        "grid": {
            "apps": serial.apps.len(),
            "inputs": serial.inputs.len(),
            "chips": serial.chips.len(),
            "configs": 96,
            "runs": serial.runs,
        },
        "threads": threads,
        "serial_seconds": serial_seconds,
        "parallel_seconds": parallel_seconds,
        "speedup": serial_seconds / parallel_seconds,
        "parallel_identical_to_serial": identical,
        "traced_seconds": traced_seconds,
        "tracing_overhead_fraction": traced_seconds / parallel_seconds - 1.0,
        "traced_identical_to_untraced": traced_identical,
        "metrics_seconds": metrics_seconds,
        "metrics_overhead_fraction": metrics_overhead_fraction,
        "metrics_identical_to_plain": metrics_identical,
        "analysis_serial_seconds": analysis_serial_seconds,
        "analysis_parallel_seconds": analysis_parallel_seconds,
        "analysis_speedup": analysis_serial_seconds / analysis_parallel_seconds,
        "analysis_identical_to_serial": analysis_identical,
        "trace_arena_bytes_per_item": trace_arena_bytes_per_item,
        "aggregation_single_pass_speedup": per_geometry_seconds / single_pass_seconds,
        "collect_traces_cold_seconds": collect_traces_cold_seconds,
        "bytecode_speedup": dsl_ast_seconds / dsl_bytecode_seconds,
        "dsl_study_native_seconds": dsl_native_seconds,
        "native_kernel_speedup": native_kernel_speedup,
        "dsl_tiers_identical": dsl_identical,
        "trace_cache_cold_seconds": trace_cache_cold_seconds,
        "trace_cache_hit_seconds": trace_cache_hit_seconds,
        "trace_cache_identical_to_uncached": cache_identical,
        "chip_sweep_chips": cloud.len(),
        "chip_sweep_geometry_families": cloud_batches.len(),
        "chip_sweep_per_chip_seconds": chip_sweep_per_chip_seconds,
        "chip_sweep_batched_seconds": chip_sweep_batched_seconds,
        "chip_sweep_chips_per_second": chip_sweep_chips_per_second,
        "chip_batch_speedup": chip_batch_speedup,
        "chip_batch_identical_to_per_chip": chip_batch_identical,
        "portfolio_matrix_pass_seconds": portfolio_matrix_pass_seconds,
        "portfolio_naive_pass_seconds": portfolio_naive_pass_seconds,
        "portfolio_matrix_speedup": portfolio_matrix_speedup,
        "portfolio_scorers_identical": portfolio_scorers_identical,
        "portfolio_scorer_allocations": portfolio_scorer_allocations,
        "portfolio_exact_k3_seconds": portfolio_exact_k3_seconds,
        "portfolio_curve_identical": portfolio_curve_identical,
        "par_overhead_calls": par_calls,
        "par_overhead_threads": par_threads,
        "par_pooled_seconds": par_pooled_seconds,
        "par_scoped_seconds": par_scoped_seconds,
        "pool_vs_scoped_speedup": pool_vs_scoped_speedup,
        "par_small_item_ns_per_item": par_small_item_ns_per_item,
        "regenerate": "cargo bench --bench study_grid (criterion groups: study_grid, cell_pricing_96_configs, study_tracing_overhead, study_metrics_overhead, analysis_pipeline, chip_sweep, portfolio_search, par_overhead, interp_vs_bytecode, bytecode_vs_native; then writes this baseline)",
    });
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent).expect("create baseline directory");
    }
    std::fs::write(
        path,
        serde_json::to_string_pretty(&baseline).expect("serialise baseline"),
    )
    .expect("write study baseline");
    eprintln!(
        "[wrote {}: serial {serial_seconds:.2}s, parallel {parallel_seconds:.2}s, {:.2}x, traced {traced_seconds:.2}s, analysis {analysis_serial_seconds:.2}s -> {analysis_parallel_seconds:.2}s]",
        path.display(),
        serial_seconds / parallel_seconds
    );
    assert!(identical, "parallel dataset must equal the serial dataset");
    assert!(
        traced_identical,
        "traced dataset must equal the untraced dataset"
    );
    assert!(
        metrics_identical,
        "metered dataset must equal the plain dataset"
    );
    assert_eq!(
        metrics_snapshot.counters.get("study.cells_priced").copied(),
        Some(metered.cells.len() as u64),
        "metrics registry must see every priced cell exactly once"
    );
    eprintln!(
        "[metrics: {metrics_seconds:.2}s metered ({:+.1}% vs plain), {} counters, {} histograms]",
        metrics_overhead_fraction * 100.0,
        metrics_snapshot.counters.len(),
        metrics_snapshot.histograms.len()
    );
    assert!(
        analysis_identical,
        "parallel analysis must equal the serial analysis"
    );
    assert_eq!(warm_compiled, 0.0, "warm cache run must compile no traces");
    assert!(
        cache_identical,
        "cached datasets must equal the uncached dataset"
    );
    assert!(
        chip_batch_identical,
        "chip-major batched pricing must be bit-identical to the per-chip loop"
    );
    assert!(
        dsl_identical,
        "AST, bytecode, and native tiers must agree bit for bit"
    );
    eprintln!(
        "[dsl tiers: ast {dsl_ast_seconds:.2}s, bytecode {dsl_bytecode_seconds:.2}s, native {dsl_native_seconds:.2}s, native {native_kernel_speedup:.2}x over bytecode]"
    );
    eprintln!(
        "[chip sweep: {} chips in {} families, per-chip {chip_sweep_per_chip_seconds:.2}s, batched {chip_sweep_batched_seconds:.2}s, {chip_batch_speedup:.1}x, {chip_sweep_chips_per_second:.0} chips/s]",
        cloud.len(),
        cloud_batches.len()
    );
    eprintln!(
        "[par overhead: {par_calls} calls x {} items at {par_threads} threads, pooled {par_pooled_seconds:.3}s vs scoped {par_scoped_seconds:.3}s, {pool_vs_scoped_speedup:.2}x, {par_small_item_ns_per_item:.0} ns/item]",
        par_items.len()
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(5));
    targets = bench_study_grid, bench_cell_pricing, bench_tracing_overhead,
        bench_metrics_overhead, bench_analysis_pipeline, bench_chip_sweep,
        bench_portfolio_search, bench_par_overhead, bench_interp_vs_bytecode,
        bench_bytecode_vs_native
}

fn main() {
    // `--smoke` bypasses criterion entirely and writes a tiny-scale
    // baseline to target/ (so it never clobbers the committed
    // full-scale numbers): a fast CI check that the whole harness —
    // grid collection, tracing, analysis pipeline, identity asserts,
    // JSON writer — still works end to end.
    if std::env::args().any(|a| a == "--smoke") {
        let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../../target/BENCH_study.smoke.json");
        write_baseline_to("tiny", &path);
        return;
    }
    benches();
    Criterion::default().configure_from_args().final_summary();
    // `cargo test --benches` smoke-runs bench binaries with `--test`;
    // skip the expensive baseline there.
    if std::env::args().any(|a| a == "--test") {
        return;
    }
    write_baseline();
}

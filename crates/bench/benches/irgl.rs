//! Criterion benches for the DSL compiler: parsing, planning, code
//! generation, and interpretation throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpp_graph::generators;
use gpp_irgl::{bytecode, codegen, interp, native, parser, printer, programs, transform};
use gpp_sim::opts::{OptConfig, Optimization};
use gpp_sim::trace::Recorder;
use std::hint::black_box;

fn bench_parse(c: &mut Criterion) {
    let sources: Vec<(String, String)> = programs::all()
        .into_iter()
        .map(|p| (p.name.clone(), printer::to_source(&p)))
        .collect();
    let mut group = c.benchmark_group("irgl_parse");
    for (name, src) in &sources {
        group.bench_with_input(BenchmarkId::from_parameter(name), src, |b, src| {
            b.iter(|| parser::parse(black_box(src)).expect("valid source"));
        });
    }
    group.finish();
}

fn bench_codegen(c: &mut Criterion) {
    let program = programs::sssp_bellman();
    let cfg = OptConfig::from_opts([
        Optimization::CoopCv,
        Optimization::Wg,
        Optimization::Sg,
        Optimization::Fg8,
        Optimization::Oitergb,
    ]);
    let plan = transform::plan(&program, cfg).expect("valid");
    c.bench_function("irgl_codegen_full_config", |b| {
        b.iter(|| codegen::opencl(black_box(&program), black_box(&plan)).expect("codegen"));
    });
}

fn bench_interpret(c: &mut Criterion) {
    let graph = generators::rmat(9, 6, 3).expect("valid");
    let mut group = c.benchmark_group("irgl_interpret_social_512");
    group.sample_size(20);
    for program in [
        programs::bfs_worklist(),
        programs::cc_label_prop(),
        programs::pr_pull(),
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(program.name.clone()),
            &program,
            |b, program| {
                b.iter(|| {
                    let mut rec = Recorder::new();
                    interp::execute(black_box(program), black_box(&graph), &mut rec)
                        .expect("runs")
                        .iterations
                });
            },
        );
    }
    group.finish();
}

fn bench_bytecode_compile(c: &mut Criterion) {
    // Kernel lowering alone (validate + compile, no execution): the
    // one-time cost a study run pays per program before the VM takes
    // over.
    let all = programs::all();
    c.bench_function("irgl_bytecode_compile_all", |b| {
        b.iter(|| {
            all.iter()
                .map(|p| bytecode::CompiledProgram::compile(black_box(p)).expect("valid"))
                .map(|c| c.kernels().iter().map(|k| k.num_ops()).sum::<usize>())
                .sum::<usize>()
        });
    });
    // Closure fusion on top of an already-compiled program: the
    // once-per-program cost of entering the native tier.
    c.bench_function("irgl_native_compile_all", |b| {
        let compiled: Vec<bytecode::CompiledProgram> = all
            .iter()
            .map(|p| bytecode::CompiledProgram::compile(p).expect("valid"))
            .collect();
        b.iter(|| {
            compiled
                .iter()
                .map(|c| native::compile_native(black_box(c)).num_kernels())
                .sum::<usize>()
        });
    });
}

fn bench_bytecode_vs_native(c: &mut Criterion) {
    // The ISSUE-9 headline matchup: the same compiled program, the same
    // graph, the register VM against the closure tier — per-run scratch
    // reused in both, compile cost excluded from both.
    let graph = generators::rmat(9, 6, 3).expect("valid");
    let mut group = c.benchmark_group("bytecode_vs_native");
    group.sample_size(20);
    for program in [
        programs::bfs_worklist(),
        programs::cc_label_prop(),
        programs::pr_pull(),
    ] {
        let compiled = bytecode::CompiledProgram::compile(&program).expect("valid");
        compiled.native(); // build the closure artifact outside the timing loop
        group.bench_with_input(
            BenchmarkId::new("bytecode", program.name.clone()),
            &compiled,
            |b, compiled| {
                let mut vm = bytecode::KernelVm::new();
                b.iter(|| {
                    let mut rec = Recorder::new();
                    vm.run(black_box(compiled), black_box(&graph), &mut rec)
                        .expect("runs")
                        .iterations
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("native", program.name.clone()),
            &compiled,
            |b, compiled| {
                let mut vm = native::NativeVm::new();
                b.iter(|| {
                    let mut rec = Recorder::new();
                    vm.run(black_box(compiled), black_box(&graph), &mut rec)
                        .expect("runs")
                        .iterations
                });
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_parse, bench_codegen, bench_interpret, bench_bytecode_compile,
        bench_bytecode_vs_native
}
criterion_main!(benches);

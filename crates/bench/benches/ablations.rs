//! Ablation benches for the design choices called out in DESIGN.md: each
//! group sweeps one chip parameter or workload property and reports the
//! modelled runtime under the optimisation the parameter interacts with,
//! so the crossover points are visible in the Criterion report.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpp_sim::chip::{ChipProfile, Vendor};
use gpp_sim::exec::{KernelProfile, Machine, Session, WorkItem};
use gpp_sim::opts::{OptConfig, Optimization};
use std::hint::black_box;

fn pushy_items(n: usize) -> Vec<WorkItem> {
    (0..n)
        .map(|i| WorkItem::new(2, 2 + (i % 3) as u32))
        .collect()
}

fn skewed_items(n: usize, hub: u32) -> Vec<WorkItem> {
    (0..n)
        .map(|i| WorkItem::new(if i % 256 == 0 { hub } else { 4 }, 0))
        .collect()
}

/// coop-cv's value depends on atomic RMW throughput: sweep the cost and
/// run the same worklist-heavy kernel with the optimisation on.
fn ablation_coop_cv_vs_atomic_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_coopcv_atomic_cost");
    let items = pushy_items(20_000);
    let profile = KernelProfile::frontier("coopcv");
    for &atomic in &[10.0f64, 40.0, 160.0] {
        let chip = ChipProfile::builder("SWEEP", Vendor::Amd)
            .subgroup_size(64)
            .atomic_rmw_cost(atomic)
            .build();
        let machine = Machine::new(chip);
        group.bench_with_input(
            BenchmarkId::from_parameter(atomic as u64),
            &items,
            |b, items| {
                let cfg = OptConfig::baseline().with(Optimization::CoopCv);
                b.iter(|| {
                    let mut s = machine.session(cfg);
                    Session::kernel(&mut s, &profile, black_box(items));
                    s.finish().time_ns
                });
            },
        );
    }
    group.finish();
}

/// Nested-parallelism schemes vs degree skew: sweep the hub degree.
fn ablation_np_vs_skew(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_np_skew");
    let profile = KernelProfile::frontier("np");
    let machine = Machine::new(ChipProfile::gtx1080());
    for &hub in &[8u32, 256, 8_192] {
        let items = skewed_items(20_000, hub);
        for (name, cfg) in [
            ("serial", OptConfig::baseline()),
            ("fg8", OptConfig::baseline().with(Optimization::Fg8)),
            (
                "wg_sg_fg8",
                OptConfig::baseline()
                    .with(Optimization::Wg)
                    .with(Optimization::Sg)
                    .with(Optimization::Fg8),
            ),
        ] {
            group.bench_with_input(BenchmarkId::new(name, hub), &items, |b, items| {
                b.iter(|| {
                    let mut s = machine.session(cfg);
                    Session::kernel(&mut s, &profile, black_box(items));
                    s.finish().time_ns
                });
            });
        }
    }
    group.finish();
}

/// Iteration outlining vs launch overhead: sweep the launch cost and run
/// a 100-iteration fixed-point loop with and without oitergb.
fn ablation_oitergb_vs_launch(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_oitergb_launch");
    group.sample_size(20);
    let profile = KernelProfile::frontier("oitergb");
    let items: Vec<WorkItem> = vec![WorkItem::new(4, 0); 256];
    for &launch in &[2_000.0f64, 20_000.0, 80_000.0] {
        let chip = ChipProfile::builder("SWEEP", Vendor::Intel)
            .kernel_launch_cost(launch)
            .host_copy_cost(launch / 2.0)
            .build();
        let machine = Machine::new(chip);
        for (name, cfg) in [
            ("host_loop", OptConfig::baseline()),
            (
                "outlined",
                OptConfig::baseline().with(Optimization::Oitergb),
            ),
        ] {
            group.bench_with_input(BenchmarkId::new(name, launch as u64), &items, |b, items| {
                b.iter(|| {
                    let mut s = machine.session(cfg);
                    for _ in 0..100 {
                        Session::kernel(&mut s, &profile, black_box(items));
                    }
                    s.finish().time_ns
                });
            });
        }
    }
    group.finish();
}

/// Workgroup size vs scheme overhead: 128 vs 256 with and without wg.
fn ablation_sz256(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_sz256");
    let profile = KernelProfile::frontier("sz");
    let machine = Machine::new(ChipProfile::iris6100());
    let items = skewed_items(30_000, 512);
    for (name, cfg) in [
        ("ws128", OptConfig::baseline().with(Optimization::Wg)),
        (
            "ws256",
            OptConfig::baseline()
                .with(Optimization::Wg)
                .with(Optimization::Sz256),
        ),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &items, |b, items| {
            b.iter(|| {
                let mut s = machine.session(cfg);
                Session::kernel(&mut s, &profile, black_box(items));
                s.finish().time_ns
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = ablation_coop_cv_vs_atomic_cost, ablation_np_vs_skew, ablation_oitergb_vs_launch, ablation_sz256
}
criterion_main!(benches);

//! Criterion benches for the graph substrate: generators and structural
//! analyses at study scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpp_graph::{generators, properties};
use std::hint::black_box;

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("generators");
    group.sample_size(20);
    group.bench_function("road_96x96", |b| {
        b.iter(|| generators::road_grid(black_box(96), 96, 7).expect("valid"));
    });
    group.bench_function("rmat_scale12_ef8", |b| {
        b.iter(|| generators::rmat(black_box(12), 8, 7).expect("valid"));
    });
    group.bench_function("uniform_8k_deg8", |b| {
        b.iter(|| generators::uniform_random(black_box(8_192), 8.0, 7).expect("valid"));
    });
    group.finish();
}

fn bench_properties(c: &mut Criterion) {
    let road = generators::road_grid(96, 96, 7).expect("valid");
    let social = generators::rmat(12, 8, 7).expect("valid");
    let mut group = c.benchmark_group("properties");
    for (name, g) in [("road", &road), ("social", &social)] {
        group.bench_with_input(BenchmarkId::new("bfs", name), g, |b, g| {
            b.iter(|| properties::bfs_levels(black_box(g), 0));
        });
        group.bench_with_input(BenchmarkId::new("components", name), g, |b, g| {
            b.iter(|| properties::connected_components(black_box(g)));
        });
        group.bench_with_input(BenchmarkId::new("degree_stats", name), g, |b, g| {
            b.iter(|| properties::degree_stats(black_box(g)));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_generators, bench_properties
}
criterion_main!(benches);

//! Criterion benches for the applications: one representative per
//! problem, executed end-to-end (algorithm + trace recording) and as a
//! timed session on a study chip.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpp_apps::app::Application;
use gpp_apps::apps::{
    bfs::BfsWl, cc::CcLp, mis::MisLuby, mst::MstBor, pr::PrPull, sssp::SsspWl, tri::Tri,
};
use gpp_graph::generators;
use gpp_sim::chip::ChipProfile;
use gpp_sim::exec::Machine;
use gpp_sim::opts::OptConfig;
use gpp_sim::trace::Recorder;
use std::hint::black_box;

fn apps() -> Vec<Box<dyn Application>> {
    vec![
        Box::new(BfsWl),
        Box::new(CcLp),
        Box::new(MisLuby),
        Box::new(MstBor),
        Box::new(PrPull),
        Box::new(SsspWl),
        Box::new(Tri),
    ]
}

fn bench_record(c: &mut Criterion) {
    let social = generators::rmat(10, 8, 3).expect("valid");
    let mut group = c.benchmark_group("record_social_1k");
    group.sample_size(20);
    for app in apps() {
        group.bench_with_input(BenchmarkId::from_parameter(app.name()), &social, |b, g| {
            b.iter(|| {
                let mut rec = Recorder::new();
                app.run(black_box(g), &mut rec);
                rec.into_trace().num_items()
            });
        });
    }
    group.finish();
}

fn bench_timed_session(c: &mut Criterion) {
    let road = generators::road_grid(32, 32, 3).expect("valid");
    let machine = Machine::new(ChipProfile::mali());
    let mut group = c.benchmark_group("session_road_mali");
    group.sample_size(20);
    for app in apps() {
        group.bench_with_input(BenchmarkId::from_parameter(app.name()), &road, |b, g| {
            b.iter(|| {
                let mut s = machine.session(OptConfig::baseline());
                app.run(black_box(g), &mut s);
                s.finish().time_ns
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_record, bench_timed_session
}
criterion_main!(benches);

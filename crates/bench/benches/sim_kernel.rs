//! Criterion benches for the execution engine: kernel evaluation
//! throughput across frontier shapes, chips, and configurations, plus the
//! aggregation and replay paths that make the full study cheap.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpp_sim::chip::ChipProfile;
use gpp_sim::exec::{CallAggregates, KernelProfile, Machine, Session, WorkItem};
use gpp_sim::opts::{OptConfig, Optimization};
use gpp_sim::trace::{CompiledTrace, Recorder};
use gpp_sim::Executor;
use std::hint::black_box;

fn frontier(n: usize, skew: bool) -> Vec<WorkItem> {
    (0..n)
        .map(|i| {
            let degree = if skew && i % 512 == 0 {
                4_000
            } else {
                3 + (i % 13) as u32
            };
            WorkItem::new(degree, (i % 4 == 0) as u32)
        })
        .collect()
}

fn bench_kernel_eval(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_eval");
    let profile = KernelProfile::frontier("bench");
    for &n in &[1_000usize, 10_000, 100_000] {
        let items = frontier(n, true);
        group.bench_with_input(BenchmarkId::new("baseline", n), &items, |b, items| {
            let m = Machine::new(ChipProfile::r9());
            b.iter(|| {
                let mut s = m.session(OptConfig::baseline());
                Session::kernel(&mut s, &profile, black_box(items));
                s.finish().time_ns
            });
        });
        group.bench_with_input(BenchmarkId::new("all_schemes", n), &items, |b, items| {
            let m = Machine::new(ChipProfile::r9());
            let cfg = OptConfig::baseline()
                .with(Optimization::Wg)
                .with(Optimization::Sg)
                .with(Optimization::Fg8)
                .with(Optimization::CoopCv);
            b.iter(|| {
                let mut s = m.session(cfg);
                Session::kernel(&mut s, &profile, black_box(items));
                s.finish().time_ns
            });
        });
    }
    group.finish();
}

fn bench_aggregation(c: &mut Criterion) {
    let items = frontier(100_000, true);
    c.bench_function("aggregate_100k_items", |b| {
        b.iter(|| CallAggregates::from_items(black_box(&items), 128, 64));
    });
}

fn bench_replay(c: &mut Criterion) {
    // Record a 50-kernel trace once, then measure replaying it across a
    // configuration — the hot loop of the study.
    let profile = KernelProfile::frontier("bench");
    let mut rec = Recorder::new();
    for i in 0..50u32 {
        let items = frontier(2_000 + (i as usize * 37) % 500, i % 2 == 0);
        rec.kernel(&profile, &items);
    }
    let compiled = CompiledTrace::new(rec.into_trace());
    let machine = Machine::new(ChipProfile::iris6100());
    // Warm the aggregation cache so the bench measures pure replay.
    compiled.precompile(&machine);
    c.bench_function("replay_50_kernels", |b| {
        let mut idx = 0usize;
        b.iter(|| {
            idx = (idx + 1) % 96;
            compiled
                .replay(&machine, OptConfig::from_index(idx))
                .time_ns
        });
    });
    // The batched path prices all 96 configurations per iteration; its
    // per-config cost should come out far below one individual replay.
    c.bench_function("replay_50_kernels_batched_96_configs", |b| {
        b.iter(|| compiled.replay_all_configs(black_box(&machine)));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_kernel_eval, bench_aggregation, bench_replay
}
criterion_main!(benches);

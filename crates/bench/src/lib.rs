//! Shared infrastructure for the experiment regenerators: dataset caching
//! and common output helpers.
//!
//! Every table/figure binary calls [`load_or_run_study`], which runs the
//! full study once and caches it as JSON under `target/study/`; subsequent
//! regenerators load the cache so the whole evaluation is cheap to
//! iterate on. Delete the cache file (or pass `--fresh`) to force a
//! re-run.

use std::path::PathBuf;

use gpp_apps::study::{run_study, Dataset, StudyConfig};

/// Location of the cached full-scale dataset.
pub fn cache_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/study/dataset.json")
}

/// Loads the cached full-scale dataset, running the study (and writing
/// the cache) if it is missing, unreadable, or `--fresh` was passed on
/// the command line.
pub fn load_or_run_study() -> Dataset {
    let fresh = std::env::args().any(|a| a == "--fresh");
    let path = cache_path();
    if !fresh {
        if let Ok(ds) = Dataset::load_json(&path) {
            eprintln!("[loaded cached dataset from {}]", path.display());
            return ds;
        }
    }
    eprintln!("[running full study (17 apps x 3 inputs x 6 chips x 96 configs x 3 runs)...]");
    let t = std::time::Instant::now();
    let ds = run_study(&StudyConfig::default());
    eprintln!("[study complete in {:?}]", t.elapsed());
    if let Err(e) = ds.save_json(&path) {
        eprintln!("[warning: could not cache dataset: {e}]");
    } else {
        eprintln!("[cached dataset at {}]", path.display());
    }
    ds
}

/// Formats an optimisation-usage fraction as the paper prints it.
pub fn pct(f: f64) -> String {
    format!("{:.0}%", f * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_path_is_under_target() {
        let p = cache_path();
        assert!(p.to_string_lossy().contains("target"));
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.5), "50%");
        assert_eq!(pct(1.0), "100%");
    }
}

//! Regenerates paper Fig. 3: for each optimisation strategy (from fully
//! portable to fully specialised), the share of improvable tests showing
//! a speedup, slowdown, or no significant change.

use gpp_bench::{load_or_run_study, pct};
use gpp_core::analysis::DatasetStats;
use gpp_core::evaluate_assignment;
use gpp_core::report::Table;
use gpp_core::strategy::{build_assignment, Strategy};

fn main() {
    let ds = load_or_run_study();
    let stats = DatasetStats::new(&ds);

    println!("Fig. 3: speedups / slowdowns / no-change per strategy");
    println!("(tests with no achievable speedup are excluded, as in the paper)\n");
    let mut t = Table::new([
        "Strategy",
        "Dims",
        "Speedups",
        "Slowdowns",
        "No change",
        "Speedup %",
        "Slowdown %",
    ]);
    for s in Strategy::ALL {
        let a = build_assignment(&stats, s);
        let e = evaluate_assignment(&stats, &a);
        let denom = e.improvable.max(1) as f64;
        t.row([
            e.strategy.clone(),
            s.dimensions().to_string(),
            e.speedups.to_string(),
            e.slowdowns.to_string(),
            e.no_change.to_string(),
            pct(e.speedups as f64 / denom),
            pct(e.slowdowns as f64 / denom),
        ]);
    }
    println!("{t}");
}

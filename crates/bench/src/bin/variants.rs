//! Implementation-strategy comparison (paper Table VII): for each of the
//! seven problems, compare the variants' *oracle-configured* runtimes per
//! input class and chip group, showing where each strategy wins — e.g.
//! topology-driven vs worklist BFS crossing over between road and social
//! inputs.

use std::collections::BTreeMap;

use gpp_apps::apps::all_applications;
use gpp_bench::load_or_run_study;
use gpp_core::analysis::DatasetStats;
use gpp_core::report::Table;
use gpp_core::stats::geomean;

fn main() {
    let ds = load_or_run_study();
    let stats = DatasetStats::new(&ds);
    let apps = all_applications();

    // Group application names by problem, remembering the (*) variant.
    let mut problems: BTreeMap<String, Vec<(String, bool)>> = BTreeMap::new();
    for app in &apps {
        problems
            .entry(app.problem().to_string())
            .or_default()
            .push((app.name().to_string(), app.fastest_variant()));
    }

    println!("Variant comparison under per-test oracle configurations");
    println!("(geomean over chips of each variant's oracle time, normalised per");
    println!("problem+input to the fastest variant; 1.00 = wins that input)\n");

    for (problem, variants) in &problems {
        if variants.len() < 2 {
            continue;
        }
        let mut t = Table::new(["Variant", "road", "social", "random", "paper's (*)"]);
        // variant -> per-input geomean oracle time.
        let mut times: Vec<(String, bool, Vec<f64>)> = Vec::new();
        for (name, starred) in variants {
            let mut per_input = Vec::new();
            for input in &ds.inputs {
                let cells = stats.select_indices(Some(name), Some(input), None);
                let oracle_times: Vec<f64> = cells
                    .iter()
                    .map(|&c| stats.median_of(c, stats.best_config(c)))
                    .collect();
                per_input.push(geomean(&oracle_times));
            }
            times.push((name.clone(), *starred, per_input));
        }
        for (i, _) in ds.inputs.iter().enumerate() {
            let best = times
                .iter()
                .map(|(_, _, t)| t[i])
                .fold(f64::INFINITY, f64::min);
            for entry in &mut times {
                entry.2[i] /= best;
            }
        }
        for (name, starred, ratios) in &times {
            let mut row = vec![name.clone()];
            row.extend(ratios.iter().map(|r| format!("{r:.2}")));
            row.push(if *starred { "*".into() } else { String::new() });
            t.row(row);
        }
        println!("== {problem} ==");
        println!("{t}");
    }
    println!("Reading: a variant at 1.00 is the fastest implementation strategy for");
    println!("that input; crossovers (different winners per column) are the paper's");
    println!("motivation for keeping multiple strategies per problem.");
}

//! Regenerates paper Fig. 4: the geomean slowdown of every strategy
//! relative to the oracle (1.0 = oracle performance), quantifying what
//! each surrendered dimension of specialisation costs.

use gpp_bench::load_or_run_study;
use gpp_core::analysis::DatasetStats;
use gpp_core::evaluate_assignment;
use gpp_core::report::Table;
use gpp_core::strategy::{build_assignment, Strategy};

fn main() {
    let ds = load_or_run_study();
    let stats = DatasetStats::new(&ds);

    println!("Fig. 4: geomean slowdown vs the oracle per strategy\n");
    let mut t = Table::new([
        "Strategy",
        "Dims",
        "Geomean vs oracle",
        "Geomean vs baseline",
    ]);
    for s in Strategy::ALL {
        let a = build_assignment(&stats, s);
        let e = evaluate_assignment(&stats, &a);
        t.row([
            e.strategy.clone(),
            s.dimensions().to_string(),
            format!("{:.3}", e.geomean_slowdown_vs_oracle),
            format!("{:.3}", e.geomean_speedup_vs_baseline),
        ]);
    }
    println!("{t}");
}

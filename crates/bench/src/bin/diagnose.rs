//! Developer diagnostic: run the full study and dump every analysis the
//! paper reports, for calibration against the paper's qualitative
//! findings.

use gpp_apps::study::{run_study, StudyConfig};
use gpp_core::analysis::{DatasetStats, Decision};
use gpp_core::report::{ratio, Table};
use gpp_core::strategy::{build_assignment, chip_function, Strategy};
use gpp_core::{
    evaluate_assignment, extremes, heatmap, max_geomean_config, per_chip_outcomes, ranking,
    top_speedup_opts,
};
use gpp_sim::opts::Optimization;

fn main() {
    let t = std::time::Instant::now();
    let ds = run_study(&StudyConfig::default());
    eprintln!("study: {:?}", t.elapsed());
    let stats = DatasetStats::new(&ds);

    println!("== Table IX: chip function ==");
    let mut t9 = Table::new(["opt", "M4000", "GTX1080", "HD5500", "IRIS", "R9", "MALI"]);
    let cf = chip_function(&stats);
    for opt in Optimization::ALL {
        let mut row = vec![opt.name().to_string()];
        for (_, analysis) in &cf {
            let d = analysis.decision(opt);
            let mark = match d.decision {
                Decision::Enable => "Y",
                Decision::Disable => "n",
                Decision::Inconclusive => "?",
            };
            row.push(format!(
                "{mark} {:.2} (p{:.3},n{})",
                d.effect_size, d.p_value, d.samples
            ));
        }
        t9.row(row);
    }
    println!("{t9}");

    println!("== Fig 1: heatmap ==");
    let hm = heatmap(&stats);
    let mut t1 = Table::new({
        let mut h = vec!["run\\opt".to_string()];
        h.extend(hm.chips.iter().cloned());
        h.push("row-gm".into());
        h
    });
    for (i, chip) in hm.chips.iter().enumerate() {
        let mut row = vec![chip.clone()];
        row.extend(hm.matrix[i].iter().map(|v| format!("{v:.2}")));
        row.push(format!("{:.2}", hm.row_geomeans[i]));
        t1.row(row);
    }
    let mut last = vec!["col-gm".to_string()];
    last.extend(hm.column_geomeans.iter().map(|v| format!("{v:.2}")));
    last.push("".into());
    t1.row(last);
    println!("{t1}");

    println!("== Table II: extremes ==");
    let mut t2 = Table::new(["chip", "max speedup", "test", "max slowdown", "test"]);
    for e in extremes(&stats) {
        t2.row([
            e.chip.clone(),
            ratio(e.max_speedup),
            format!("{} {}", e.speedup_test.0, e.speedup_test.1),
            ratio(e.max_slowdown),
            format!("{} {}", e.slowdown_test.0, e.slowdown_test.1),
        ]);
    }
    println!("{t2}");

    println!("== Table III: ranking (top5 / bottom5) ==");
    let ranked = ranking(&stats);
    let mut t3 = Table::new(["rank", "opts", "slowdowns", "speedups", "geomean"]);
    for (i, r) in ranked.iter().enumerate() {
        if i < 5 || i >= ranked.len() - 5 {
            t3.row([
                i.to_string(),
                r.config.to_string(),
                r.slowdowns.to_string(),
                r.speedups.to_string(),
                format!("{:.2}", r.geomean_speedup),
            ]);
        }
    }
    println!("{t3}");
    let mg = max_geomean_config(&stats);
    println!(
        "max-geomean pick: {} (geomean {:.2}, slowdowns {})",
        mg.config, mg.geomean_speedup, mg.slowdowns
    );
    println!("== Table IV for max-geomean pick ==");
    let mut t4 = Table::new(["chip", "speedups", "slowdowns", "max speedup"]);
    for r in per_chip_outcomes(&stats, mg.config) {
        t4.row([
            r.chip.clone(),
            r.speedups.to_string(),
            r.slowdowns.to_string(),
            ratio(r.max_speedup),
        ]);
    }
    println!("{t4}");

    println!("== Fig 3/4: strategies ==");
    let mut tf = Table::new([
        "strategy",
        "speedups",
        "slowdowns",
        "nochange",
        "improvable",
        "gm vs oracle",
        "gm vs base",
    ]);
    for s in Strategy::ALL {
        let a = build_assignment(&stats, s);
        let e = evaluate_assignment(&stats, &a);
        tf.row([
            e.strategy.clone(),
            e.speedups.to_string(),
            e.slowdowns.to_string(),
            e.no_change.to_string(),
            e.improvable.to_string(),
            format!("{:.3}", e.geomean_slowdown_vs_oracle),
            format!("{:.3}", e.geomean_speedup_vs_baseline),
        ]);
    }
    println!("{tf}");

    println!("== Fig 2: top-speedup opt usage ==");
    let mut t2b = Table::new([
        "chip", "coop-cv", "wg", "sg", "fg", "fg8", "oitergb", "sz256",
    ]);
    for row in top_speedup_opts(&stats) {
        let mut cells = vec![row.chip.clone()];
        cells.extend(row.usage.iter().map(|(_, f)| format!("{:.0}%", f * 100.0)));
        t2b.row(cells);
    }
    println!("{t2b}");

    println!("== strategy configs ==");
    for s in [Strategy::Global, Strategy::Chip] {
        let a = build_assignment(&stats, s);
        for (key, analysis) in a.partitions() {
            println!("{s} {:?} -> {}", key.chip, analysis.config);
        }
    }
}

//! Developer probe: per-cell speedups of single optimisations.

use gpp_apps::apps::all_applications;
use gpp_apps::inputs::{study_inputs, StudyScale};
use gpp_sim::chip::study_chips;
use gpp_sim::exec::Machine;
use gpp_sim::opts::{OptConfig, Optimization};
use gpp_sim::trace::{CompiledTrace, Recorder};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let opt_name = args.get(1).map(String::as_str).unwrap_or("fg8");
    let opt = Optimization::parse(opt_name).expect("unknown optimisation");
    let inputs = study_inputs(StudyScale::Full, 0x9a7e_2019);
    let apps = all_applications();
    println!("speedup of {{{opt}}} over baseline, per (app, input, chip):");
    for input in &inputs {
        for app in &apps {
            let mut rec = Recorder::new();
            app.run(&input.graph, &mut rec);
            let compiled = CompiledTrace::new(rec.into_trace());
            print!("{:>9} {:>7}: ", app.name(), input.name);
            for chip in study_chips() {
                let m = Machine::new(chip.clone());
                let base = compiled.replay(&m, OptConfig::baseline()).time_ns;
                let with = compiled.replay(&m, OptConfig::baseline().with(opt)).time_ns;
                print!("{}={:>5.2} ", chip.name, base / with);
            }
            println!();
        }
    }
}

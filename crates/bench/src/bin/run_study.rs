//! Runs the full study grid and caches the dataset for the other
//! regenerators. Pass `--fresh` to discard any existing cache.

use gpp_bench::load_or_run_study;

fn main() {
    let ds = load_or_run_study();
    println!(
        "dataset: {} applications x {} inputs x {} chips = {} tuples, {} runs per configuration",
        ds.apps.len(),
        ds.inputs.len(),
        ds.chips.len(),
        ds.cells.len(),
        ds.runs
    );
}

//! Input-dimension stress test: rerun the study with *two* graphs per
//! structural class (six inputs) and check whether the per-chip analysis
//! (Table IX) is stable under the richer input mix — the paper's point
//! that inputs confound simplistic analyses, and that a sound analysis
//! should not flip when more inputs of the same classes are added.

use gpp_apps::study::{run_study, StudyConfig};
use gpp_core::analysis::{DatasetStats, Decision};
use gpp_core::report::Table;
use gpp_core::strategy::chip_function;
use gpp_sim::opts::Optimization;

fn main() {
    let base_ds = run_study(&StudyConfig::default());
    let ext_ds = run_study(&StudyConfig {
        extended_inputs: true,
        ..StudyConfig::default()
    });
    println!(
        "base study: {} inputs / {} cells; extended: {} inputs / {} cells\n",
        base_ds.inputs.len(),
        base_ds.cells.len(),
        ext_ds.inputs.len(),
        ext_ds.cells.len()
    );

    let base_stats = DatasetStats::new(&base_ds);
    let ext_stats = DatasetStats::new(&ext_ds);
    let base_fn = chip_function(&base_stats);
    let ext_fn = chip_function(&ext_stats);

    let mark = |d: Decision| match d {
        Decision::Enable => "Y",
        Decision::Disable => "n",
        Decision::Inconclusive => "?",
    };
    let mut headers = vec!["Optimisation".to_string()];
    headers.extend(base_fn.iter().map(|(c, _)| format!("{c} (3->6 inputs)")));
    let mut t = Table::new(headers);
    let (mut agree, mut total) = (0usize, 0usize);
    for opt in Optimization::ALL {
        let mut row = vec![opt.name().to_string()];
        for ((_, b), (_, e)) in base_fn.iter().zip(&ext_fn) {
            let (bd, ed) = (b.decision(opt).decision, e.decision(opt).decision);
            total += 1;
            if bd == ed {
                agree += 1;
            }
            row.push(format!("{} -> {}", mark(bd), mark(ed)));
        }
        t.row(row);
    }
    println!("{t}");
    println!(
        "verdict agreement under the doubled input set: {}/{} ({:.0}%)",
        agree,
        total,
        100.0 * agree as f64 / total as f64
    );
}

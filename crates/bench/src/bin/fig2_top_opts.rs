//! Regenerates paper Fig. 2: which optimisations are necessary for the
//! top speedups on each chip (fraction of each chip's improvable tests
//! whose oracle configuration enables the optimisation).

use gpp_bench::{load_or_run_study, pct};
use gpp_core::analysis::DatasetStats;
use gpp_core::report::Table;
use gpp_core::top_speedup_opts;
use gpp_sim::opts::Optimization;

fn main() {
    let ds = load_or_run_study();
    let stats = DatasetStats::new(&ds);

    println!("Fig. 2: optimisations necessary for top speedups per chip\n");
    let mut headers = vec!["Chip".to_string()];
    headers.extend(Optimization::ALL.iter().map(|o| o.name().to_string()));
    let mut t = Table::new(headers);
    for row in top_speedup_opts(&stats) {
        let mut cells = vec![row.chip.clone()];
        cells.extend(row.usage.iter().map(|(_, f)| pct(*f)));
        t.row(cells);
    }
    println!("{t}");
}

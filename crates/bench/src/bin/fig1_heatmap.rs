//! Regenerates paper Fig. 1: the heatmap of geomean slowdowns when the
//! optimal optimisations for one chip are applied on all other chips
//! (rows = chip run on, columns = chip tuned for; higher is worse).

use gpp_bench::load_or_run_study;
use gpp_core::analysis::DatasetStats;
use gpp_core::heatmap;
use gpp_core::report::Table;

fn main() {
    let ds = load_or_run_study();
    let stats = DatasetStats::new(&ds);
    let hm = heatmap(&stats);

    println!("Fig. 1: geomean slowdown of chip-specialised optima ported across chips\n");
    let mut headers = vec!["run \\ tuned-for".to_string()];
    headers.extend(hm.chips.iter().cloned());
    headers.push("row geomean".into());
    let mut t = Table::new(headers);
    for (i, chip) in hm.chips.iter().enumerate() {
        let mut row = vec![chip.clone()];
        row.extend(hm.matrix[i].iter().map(|v| format!("{v:.2}")));
        row.push(format!("{:.2}", hm.row_geomeans[i]));
        t.row(row);
    }
    let mut footer = vec!["column geomean".to_string()];
    footer.extend(hm.column_geomeans.iter().map(|v| format!("{v:.2}")));
    footer.push(String::new());
    t.row(footer);
    println!("{t}");
    println!("Smaller column geomean = that chip's optima are more portable;");
    println!("smaller row geomean = that chip tolerates foreign optima better.");
}

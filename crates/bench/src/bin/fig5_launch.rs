//! Regenerates paper Fig. 5: GPU utilisation vs kernel duration when
//! launching 10000 kernels interleaved with small device-to-host copies
//! — the microbenchmark explaining why Nvidia chips do not need
//! iteration outlining.

use gpp_core::report::Table;
use gpp_sim::chip::study_chips;
use gpp_sim::microbench::{utilisation, LAUNCHES};

fn main() {
    let chips = study_chips();
    println!("Fig. 5: utilisation vs kernel duration ({LAUNCHES} launches + copies)\n");
    let mut headers = vec!["Kernel time".to_string()];
    headers.extend(chips.iter().map(|c| c.name.clone()));
    let mut t = Table::new(headers);
    for k_us in [1.0f64, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0] {
        let mut row = vec![format!("{k_us:.0} us")];
        for chip in &chips {
            row.push(format!(
                "{:.2}",
                utilisation(chip, k_us * 1_000.0, LAUNCHES)
            ));
        }
        t.row(row);
    }
    println!("{t}");
    println!("Nvidia chips sit highest at every kernel duration: their launch and");
    println!("copy overheads are the smallest, so oitergb has the least to save.");
}

//! The per-application and per-input optimisation functions — the
//! companion tables to Table IX that the paper defers to the thesis
//! ([29, Ch. 4]): what Algorithm 1 recommends when specialising on each
//! of the other two single dimensions.

use gpp_bench::load_or_run_study;
use gpp_core::analysis::DatasetStats;
use gpp_core::report::Table;
use gpp_core::strategy::{build_assignment, Strategy};

fn main() {
    let ds = load_or_run_study();
    let stats = DatasetStats::new(&ds);

    println!("Per-application optimisation function (app strategy, Table V):\n");
    let a = build_assignment(&stats, Strategy::App);
    let mut t = Table::new(["Application", "Recommended configuration"]);
    for (key, analysis) in a.partitions() {
        t.row([
            key.app.clone().unwrap_or_default(),
            analysis.config.to_string(),
        ]);
    }
    println!("{t}");

    println!("Per-input optimisation function (input strategy, Table V):\n");
    let a = build_assignment(&stats, Strategy::Input);
    let mut t = Table::new(["Input", "Recommended configuration"]);
    for (key, analysis) in a.partitions() {
        t.row([
            key.input.clone().unwrap_or_default(),
            analysis.config.to_string(),
        ]);
    }
    println!("{t}");

    println!("Per-(application, input) functions (app_input strategy) for the fastest");
    println!("variants:\n");
    let a = build_assignment(&stats, Strategy::AppInput);
    let mut t = Table::new(["Application", "Input", "Recommended configuration"]);
    for (key, analysis) in a.partitions() {
        let app = key.app.clone().unwrap_or_default();
        if [
            "bfs-wl", "cc-lp", "mis-luby", "mst-bor", "pr-pull", "sssp-wl", "tri",
        ]
        .contains(&app.as_str())
        {
            t.row([
                app,
                key.input.clone().unwrap_or_default(),
                analysis.config.to_string(),
            ]);
        }
    }
    println!("{t}");
}

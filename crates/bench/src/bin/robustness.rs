//! Calibration-robustness ablation: the chip models' cost parameters are
//! estimates, so the reproduction is only credible if the paper-level
//! conclusions (the Table IX chip function) survive perturbation of those
//! estimates. This experiment multiplies every cost parameter of every
//! chip by an independent random factor and measures how many analysis
//! verdicts flip.

use gpp_apps::study::{run_study_on, StudyConfig};
use gpp_core::analysis::DatasetStats;
use gpp_core::report::{percent, Table};
use gpp_core::strategy::chip_function;
use gpp_graph::rng::Rng64;
use gpp_sim::chip::{study_chips, ChipProfile};
use gpp_sim::opts::Optimization;

/// Multiplies each cost parameter by `exp(U(-m, m))` where `m = ln(1+mag)`.
fn perturb(chip: &ChipProfile, magnitude: f64, rng: &mut Rng64) -> ChipProfile {
    let mut c = chip.clone();
    let m = (1.0 + magnitude).ln();
    let mut jitter = |v: &mut f64| {
        let factor = (rng.next_f64() * 2.0 - 1.0) * m;
        *v *= factor.exp();
    };
    jitter(&mut c.alu_cost);
    jitter(&mut c.global_mem_cost);
    jitter(&mut c.local_mem_cost);
    jitter(&mut c.atomic_rmw_cost);
    jitter(&mut c.atomic_uncontended_cost);
    jitter(&mut c.sg_collective_cost);
    jitter(&mut c.wg_barrier_cost);
    jitter(&mut c.sg_barrier_cost);
    jitter(&mut c.global_barrier_cost_per_wg);
    jitter(&mut c.kernel_launch_cost);
    jitter(&mut c.host_copy_cost);
    jitter(&mut c.kernel_fixed_cost);
    // Divergence penalty perturbs its excess over 1 to stay valid.
    let mut excess = c.divergence_penalty - 1.0;
    jitter(&mut excess);
    c.divergence_penalty = 1.0 + excess;
    c
}

fn main() {
    let nominal_ds = run_study_on(&StudyConfig::default(), &study_chips());
    let nominal_stats = DatasetStats::new(&nominal_ds);
    let nominal = chip_function(&nominal_stats);

    const TRIALS: usize = 5;
    println!(
        "Chip-model robustness: every cost parameter of every chip perturbed by a\n\
         random factor; {} trials per magnitude; agreement = fraction of the 42\n\
         (chip, optimisation) verdicts matching the nominal Table IX.\n",
        TRIALS
    );
    let mut rng = Rng64::new(0x0b0b_cafe);
    let mut table = Table::new(["Perturbation", "Verdict agreement", "Worst optimisation"]);
    for magnitude in [0.10f64, 0.20, 0.30] {
        let mut agree_sum = 0.0;
        let mut flips_per_opt = vec![0usize; Optimization::ALL.len()];
        for _ in 0..TRIALS {
            let chips: Vec<ChipProfile> = study_chips()
                .iter()
                .map(|c| perturb(c, magnitude, &mut rng))
                .collect();
            let ds = run_study_on(&StudyConfig::default(), &chips);
            let stats = DatasetStats::new(&ds);
            let perturbed = chip_function(&stats);
            let (mut agree, mut total) = (0usize, 0usize);
            for ((_, a), (_, b)) in nominal.iter().zip(&perturbed) {
                for (i, opt) in Optimization::ALL.into_iter().enumerate() {
                    total += 1;
                    if a.decision(opt).decision == b.decision(opt).decision {
                        agree += 1;
                    } else {
                        flips_per_opt[i] += 1;
                    }
                }
            }
            agree_sum += agree as f64 / total as f64;
        }
        let worst = flips_per_opt
            .iter()
            .enumerate()
            .max_by_key(|(_, &n)| n)
            .map(|(i, &n)| format!("{} ({n} flips)", Optimization::ALL[i].name()))
            .unwrap_or_default();
        table.row([
            format!("±{:.0}%", magnitude * 100.0),
            percent(agree_sum / TRIALS as f64),
            worst,
        ]);
    }
    println!("{table}");
    println!("High agreement means the reproduction's conclusions follow from the");
    println!("modelled mechanisms, not from a knife-edge choice of cost constants.");
}

//! Regenerates paper Table IV: the per-chip speedup/slowdown breakdown
//! of (a) the configuration with the highest global geomean — showing
//! the magnitude-based bias against insensitive chips — and (b) the
//! rank-based pick of our analysis, which avoids it.

use gpp_bench::load_or_run_study;
use gpp_core::analysis::DatasetStats;
use gpp_core::max_geomean_config;
use gpp_core::per_chip_outcomes;
use gpp_core::report::{ratio, Table};
use gpp_core::strategy::{build_assignment, Strategy};

fn main() {
    let ds = load_or_run_study();
    let stats = DatasetStats::new(&ds);

    let biased = max_geomean_config(&stats).config;
    let global = build_assignment(&stats, Strategy::Global);
    let ours = global.config(0);

    for (label, cfg) in [
        ("max-geomean pick", biased),
        ("rank-based analysis pick", ours),
    ] {
        println!("Table IV ({label}: {cfg})\n");
        let mut t = Table::new(["Chip", "Speedups", "Slowdowns", "Max individual speedup"]);
        for r in per_chip_outcomes(&stats, cfg) {
            t.row([
                r.chip.clone(),
                r.speedups.to_string(),
                r.slowdowns.to_string(),
                ratio(r.max_speedup),
            ]);
        }
        println!("{t}");
    }
}

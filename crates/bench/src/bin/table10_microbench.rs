//! Regenerates paper Table X: the sg-cmb (subgroup atomic RMW combining)
//! and m-divg (gratuitous-barrier memory divergence) microbenchmark
//! speedups per chip.

use gpp_core::report::{ratio, Table};
use gpp_sim::chip::study_chips;
use gpp_sim::microbench::{m_divg, sg_cmb, M_DIVG_ROUNDS, SG_CMB_N};

fn main() {
    let chips = study_chips();
    println!("Table X: microbenchmark speedups per chip\n");
    let mut headers = vec!["Benchmark".to_string()];
    headers.extend(chips.iter().map(|c| c.name.clone()));
    let mut t = Table::new(headers);

    let mut row = vec!["sg-cmb".to_string()];
    for chip in &chips {
        row.push(ratio(sg_cmb(chip, SG_CMB_N).speedup()));
    }
    t.row(row);

    let mut row = vec!["m-divg".to_string()];
    for chip in &chips {
        row.push(ratio(m_divg(chip, M_DIVG_ROUNDS).speedup()));
    }
    t.row(row);

    println!("{t}");
    println!("sg-cmb: combining subgroup atomics pays off only on chips without JIT");
    println!("combining and with real subgroups (R9, IRIS).");
    println!("m-divg: every chip benefits a little from a gratuitous barrier; MALI");
    println!("is the outlier, revealing its extreme memory-divergence sensitivity.");
}

//! Regenerates paper Table III: every optimisation combination applied
//! globally, ranked by the number of tuples that slow down. Shows the
//! top five, the two middle rows the paper highlights (the max-geomean
//! pick and the rank-based pick), and the bottom five.

use gpp_bench::load_or_run_study;
use gpp_core::analysis::DatasetStats;
use gpp_core::report::Table;
use gpp_core::strategy::{build_assignment, Strategy};
use gpp_core::{max_geomean_config, ranking};

fn main() {
    let ds = load_or_run_study();
    let stats = DatasetStats::new(&ds);
    let rows = ranking(&stats);
    let best_geomean = max_geomean_config(&stats).config;
    let global = build_assignment(&stats, Strategy::Global);
    let rank_pick = global.config(0);

    println!("Table III: configurations ranked by slowdowns caused (global application)\n");
    let mut t = Table::new([
        "Rank",
        "Enabled opts",
        "Slowdowns",
        "Speedups",
        "Geomean",
        "",
    ]);
    for (i, r) in rows.iter().enumerate() {
        let highlight = if r.config == best_geomean {
            "<- max geomean"
        } else if r.config == rank_pick {
            "<- rank-based analysis pick"
        } else {
            ""
        };
        if i < 5 || i >= rows.len() - 5 || !highlight.is_empty() {
            t.row([
                i.to_string(),
                r.config.to_string(),
                r.slowdowns.to_string(),
                r.speedups.to_string(),
                format!("{:.2}", r.geomean_speedup),
                highlight.to_string(),
            ]);
        }
    }
    println!("{t}");
    println!("'Do no harm' would select the baseline: even rank 0 causes slowdowns.");
}

//! Regenerates paper Table I: the GPUs of the study.

use gpp_core::report::Table;
use gpp_sim::chip::study_chips;

fn main() {
    println!("Table I: GPUs used in the study\n");
    let mut t = Table::new(["Vendor", "Chip", "#CUs", "SG Size", "Short Name"]);
    for chip in study_chips() {
        let long_name = match chip.name.as_str() {
            "M4000" => "Quadro M4000",
            "GTX1080" => "GTX 1080",
            "HD5500" => "HD 5500",
            "IRIS" => "Iris 6100",
            "R9" => "Radeon R9",
            "MALI" => "Mali-T628",
            other => other,
        };
        t.row([
            chip.vendor.to_string(),
            long_name.to_string(),
            chip.num_cus.to_string(),
            chip.subgroup_size.to_string(),
            chip.name.clone(),
        ]);
    }
    println!("{t}");
}

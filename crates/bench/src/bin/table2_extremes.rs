//! Regenerates paper Table II: the extreme speedups and slowdowns
//! observed per chip across all (application, input, configuration)
//! combinations, plus the overall oracle geomean (Section II-B).

use gpp_bench::load_or_run_study;
use gpp_core::analysis::DatasetStats;
use gpp_core::report::{ratio, Table};
use gpp_core::strategy::{build_assignment, Strategy};
use gpp_core::{evaluate_assignment, extremes};

fn main() {
    let ds = load_or_run_study();
    let stats = DatasetStats::new(&ds);

    println!("Table II: extreme speedups/slowdowns per chip\n");
    let mut t = Table::new(["Chip", "Max speedup", "on test", "Max slowdown", "on test"]);
    for e in extremes(&stats) {
        t.row([
            e.chip.clone(),
            ratio(e.max_speedup),
            format!("{} / {}", e.speedup_test.0, e.speedup_test.1),
            ratio(e.max_slowdown),
            format!("{} / {}", e.slowdown_test.0, e.slowdown_test.1),
        ]);
    }
    println!("{t}");

    let oracle = build_assignment(&stats, Strategy::Oracle);
    let eval = evaluate_assignment(&stats, &oracle);
    println!(
        "Maximum geomean speedup (oracle over baseline, all tests): {}",
        ratio(eval.geomean_speedup_vs_baseline)
    );
}

//! Regenerates paper Table IX: the per-chip optimisation function with
//! Mann-Whitney common-language effect sizes. `Y` = enable, `n` = do not
//! enable, `?` = not enough significant samples to decide.

use gpp_bench::load_or_run_study;
use gpp_core::analysis::{DatasetStats, Decision};
use gpp_core::report::Table;
use gpp_core::strategy::chip_function;
use gpp_sim::opts::Optimization;

fn main() {
    let ds = load_or_run_study();
    let stats = DatasetStats::new(&ds);
    let table = chip_function(&stats);

    println!("Table IX: chip-specialised optimisation function (mark, CL effect size)\n");
    let mut headers = vec!["Optimisation".to_string()];
    headers.extend(table.iter().map(|(chip, _)| chip.clone()));
    let mut t = Table::new(headers);
    for opt in Optimization::ALL {
        let mut row = vec![opt.name().to_string()];
        for (_, analysis) in &table {
            let d = analysis.decision(opt);
            let mark = match d.decision {
                Decision::Enable => "Y",
                Decision::Disable => "n",
                Decision::Inconclusive => "?",
            };
            row.push(format!("{mark} {:.2}", d.effect_size));
        }
        t.row(row);
    }
    println!("{t}");
    println!("Recommended per-chip configurations:");
    for (chip, analysis) in &table {
        println!("  {chip:>8}: {}", analysis.config);
    }
}

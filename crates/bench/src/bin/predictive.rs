//! The paper's predictive-model future work (Section IX-b): probe a
//! handful of configurations for an unseen test and predict a good
//! configuration by nearest-neighbour over the known tests on the same
//! chip. Leave-one-out evaluation over the full dataset, sweeping the
//! probe budget.

use gpp_bench::{load_or_run_study, pct};
use gpp_core::analysis::DatasetStats;
use gpp_core::report::Table;
use gpp_core::strategy::{build_assignment, Strategy};
use gpp_core::{evaluate_assignment, leave_one_out};

fn main() {
    let ds = load_or_run_study();
    let stats = DatasetStats::new(&ds);

    println!("Leave-one-out predictive model: probe k of 96 configurations, predict the");
    println!("rest from the nearest known test on the same chip\n");
    let mut t = Table::new([
        "Probes",
        "Geomean vs oracle",
        "Within 5% of oracle",
        "Beats baseline",
    ]);
    for k in [2usize, 4, 8, 12, 16, 24] {
        let e = leave_one_out(&stats, k);
        t.row([
            e.probes.to_string(),
            format!("{:.3}", e.geomean_vs_oracle),
            pct(e.near_oracle),
            pct(e.beats_baseline),
        ]);
    }
    println!("{t}");

    // Context: the descriptive strategies' distance to the oracle.
    println!("For comparison (descriptive strategies, no per-test probes):");
    for s in [Strategy::Global, Strategy::Chip, Strategy::ChipAppInput] {
        let e = evaluate_assignment(&stats, &build_assignment(&stats, s));
        println!(
            "  {:<16} geomean vs oracle {:.3}",
            s.name(),
            e.geomean_slowdown_vs_oracle
        );
    }
}

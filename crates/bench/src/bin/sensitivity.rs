//! The paper's future-work experiment (Section IX-b): how much of the
//! exhaustive test domain is actually needed before the per-chip analysis
//! recommends the same optimisations? Sweeps the kept fraction of
//! (application, input) tests and reports verdict/config agreement with
//! the full dataset.

use gpp_bench::{load_or_run_study, pct};
use gpp_core::report::Table;
use gpp_core::sensitivity::subsample_sensitivity;

fn main() {
    let ds = load_or_run_study();
    let fractions = [1.0, 0.75, 0.5, 0.33, 0.25, 0.15, 0.1, 0.05];
    let report = subsample_sensitivity(&ds, &fractions, 5, 0x5eed);

    println!(
        "Sample-size sensitivity of the per-chip analysis ({} trials/point)\n",
        report.trials
    );
    let mut t = Table::new([
        "Tests kept",
        "Fraction",
        "Verdict agreement",
        "Config agreement",
        "Inconclusive",
    ]);
    for p in &report.points {
        t.row([
            p.tests_kept.to_string(),
            pct(p.fraction),
            pct(p.decision_agreement),
            pct(p.config_agreement),
            pct(p.inconclusive),
        ]);
    }
    println!("{t}");
    println!("High agreement at moderate fractions means the exhaustive sweep can be");
    println!("substantially subsampled before the recommendations drift — the paper's");
    println!("premise for moving from descriptive to predictive models.");
}

//! `gpp` — command-line interface to the performance-portability study.
//!
//! Run `gpp help` for the command list. Every analysis command consumes
//! the dataset cached by `gpp study` (default `target/study/dataset.json`)
//! and regenerates one of the paper's tables or figures.

mod args;
mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let parsed = args::Args::parse(std::env::args().skip(1));
    let stdout = std::io::stdout();
    match commands::run(&parsed, &mut stdout.lock()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

//! Minimal argument parsing: `gpp <command> [--flag value]...`.

use std::collections::HashMap;

/// A parsed command line.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Args {
    /// The subcommand (first positional argument).
    pub command: String,
    /// Remaining positional arguments.
    pub positional: Vec<String>,
    /// `--key value` and bare `--flag` options (the latter map to `""`).
    pub options: HashMap<String, String>,
}

impl Args {
    /// Parses an argument vector (without the program name).
    pub fn parse<I: IntoIterator<Item = String>>(argv: I) -> Args {
        let mut args = Args::default();
        let mut iter = argv.into_iter().peekable();
        if let Some(cmd) = iter.next() {
            args.command = cmd;
        }
        while let Some(tok) = iter.next() {
            if let Some(key) = tok.strip_prefix("--") {
                let value = match iter.peek() {
                    Some(next) if !next.starts_with("--") => iter.next().expect("peeked"),
                    _ => String::new(),
                };
                args.options.insert(key.to_owned(), value);
            } else {
                args.positional.push(tok);
            }
        }
        args
    }

    /// An option's value, if present.
    pub fn opt(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// Whether a bare flag was given.
    pub fn flag(&self, key: &str) -> bool {
        self.options.contains_key(key)
    }

    /// A numeric option with a default.
    ///
    /// # Errors
    ///
    /// Returns a message naming the option when the value does not parse.
    pub fn num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.opt(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("invalid value for --{key}: `{v}`")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(str::to_owned))
    }

    #[test]
    fn parses_command_and_options() {
        let a = parse("study --scale small --seed 42");
        assert_eq!(a.command, "study");
        assert_eq!(a.opt("scale"), Some("small"));
        assert_eq!(a.num::<u64>("seed", 0), Ok(42));
    }

    #[test]
    fn parses_positional_and_flags() {
        let a = parse("classify graph.el --verbose");
        assert_eq!(a.positional, vec!["graph.el"]);
        assert!(a.flag("verbose"));
        assert!(!a.flag("quiet"));
    }

    #[test]
    fn numeric_default_applies() {
        let a = parse("study");
        assert_eq!(a.num::<u64>("seed", 7), Ok(7));
    }

    #[test]
    fn bad_number_is_an_error() {
        let a = parse("study --seed zebra");
        assert!(a.num::<u64>("seed", 0).unwrap_err().contains("seed"));
    }

    #[test]
    fn empty_argv_is_empty_command() {
        let a = Args::parse(std::iter::empty());
        assert_eq!(a.command, "");
    }

    #[test]
    fn flag_before_another_option_has_empty_value() {
        let a = parse("x --fresh --seed 3");
        assert!(a.flag("fresh"));
        assert_eq!(a.opt("fresh"), Some(""));
        assert_eq!(a.num::<u64>("seed", 0), Ok(3));
    }
}

//! Subcommand implementations. Each takes parsed [`Args`] and writes its
//! report to the given writer (stdout in production, a buffer in tests).

use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use gpp_apps::cache::TraceCache;
use gpp_apps::study::{run_study, run_study_cached, Dataset, StudyConfig};
use gpp_apps::sweep::{price_cloud_cached, run_sweep_cached, run_sweep_traced, SweepConfig};
use gpp_apps::StudyScale;
use gpp_core::analysis::{DatasetStats, Decision};
use gpp_core::report::{percent, ratio, Table};
use gpp_core::strategy::{build_assignment_par, chip_function_par, Strategy};
use gpp_core::{
    evaluate_assignment, extremes, heatmap, leave_one_out_par, ranking,
    subsample_sensitivity_par, Objective, SearchParams, SlowdownMatrix,
};
use gpp_graph::{io as graph_io, properties};
use gpp_irgl::{codegen, interp, parser, programs, transform};
use gpp_obs::regress::{self, Direction};
use gpp_obs::{
    expose, metrics, CostBreakdown, FileSink, MemorySink, PhaseProfiler, TeeSink, TraceSummary,
    Tracer,
};
use gpp_sim::chip::{latin_hypercube_chips, study_chip, study_chips, ChipProfile};
use gpp_sim::exec::Machine;
use gpp_sim::memmodel::chip_support;
use gpp_sim::microbench::{m_divg, sg_cmb, utilisation, LAUNCHES, M_DIVG_ROUNDS, SG_CMB_N};
use gpp_sim::opts::{OptConfig, NUM_CONFIGS};
use gpp_sim::trace::{CompiledTrace, Recorder};

use crate::args::Args;

/// Runs one subcommand.
///
/// # Errors
///
/// Returns a user-facing message on bad arguments, missing files, or
/// malformed inputs.
pub fn run(args: &Args, out: &mut dyn Write) -> Result<(), String> {
    match args.command.as_str() {
        "chips" => chips(out),
        "study" => study(args, out),
        "explain" => explain(args, out),
        "analyze" => analyze(args, out),
        "chip-function" => chip_function_cmd(args, out),
        "heatmap" => heatmap_cmd(args, out),
        "ranking" => ranking_cmd(args, out),
        "extremes" => extremes_cmd(args, out),
        "microbench" => microbench(out),
        "classify" => classify(args, out),
        "codegen" => codegen_cmd(args, out),
        "compile" => compile_cmd(args, out),
        "run-dsl" => run_dsl(args, out),
        "sensitivity" => sensitivity_cmd(args, out),
        "sweep" => sweep_cmd(args, out),
        "portfolio" => portfolio_cmd(args, out),
        "profile" => profile_cmd(args, out),
        "bench-check" => bench_check(args, out),
        "predict" => predict_cmd(args, out),
        "export-csv" => export_csv(args, out),
        "export-chips" => export_chips(args, out),
        "help" | "" => help(out),
        other => Err(format!("unknown command `{other}`; try `gpp help`")),
    }
}

fn w(out: &mut dyn Write, text: impl std::fmt::Display) -> Result<(), String> {
    writeln!(out, "{text}").map_err(|e| e.to_string())
}

fn help(out: &mut dyn Write) -> Result<(), String> {
    w(
        out,
        "gpp — quantifying performance portability of graph applications on (simulated) GPUs\n\n\
         commands:\n  \
         chips                       the six study chips (Table I)\n  \
         study [--scale S] [--seed N] [--threads N] [--out FILE] [--chips FILE] [--trace-out FILE] [--trace-cache DIR] [--metrics-out FILE] [--dsl]\n                              run the full grid and save the dataset; --trace-out\n                              streams pipeline spans/counters as JSONL and prints a summary;\n                              --trace-cache persists recorded traces so warm runs skip\n                              the collect-traces phase (delete DIR to invalidate);\n                              --metrics-out snapshots the pipeline metrics registry\n                              (counters, gauges, latency histograms) as JSON;\n                              --dsl appends the seven bytecode-compiled DSL programs\n  \
         profile [study|sweep] [--smoke] [--scale S] [--seed N] [--threads N] [--chips N] [--metrics-out FILE] [--prometheus-out FILE]\n                              run a workload under the phase profiler and print the\n                              nested phase tree (total/self wall, worker utilisation),\n                              throughput, and peak RSS; the workload's outputs are\n                              byte-identical to an unprofiled run\n  \
         bench-check [--baseline FILE] [--current FILE] [--tolerance F] [--smoke]\n                              regression gate: compare a metrics snapshot against the\n                              checked-in bench baseline (default BENCH_study.json) and\n                              exit nonzero when a key regresses beyond the tolerance\n                              (default 0.25); --smoke only sanity-checks the baseline\n  \
         explain [--app A] [--input I] [--chip C] [--opts OPTS] [--scale S]\n                              per-mechanism cost attribution of one priced cell per chip\n  \
         export-chips FILE           write the six study chip models as JSON\n  \
         analyze [--data FILE] [--threads N]\n                              strategy spectrum (Figs 3 and 4)\n  \
         chip-function [--data FILE] [--threads N]\n                              per-chip recommendations (Table IX)\n  \
         heatmap [--data FILE]       cross-chip portability (Fig 1)\n  \
         ranking [--data FILE]       global configuration ranking (Table III)\n  \
         extremes [--data FILE]      per-chip extremes (Table II)\n  \
         microbench                  sg-cmb / m-divg / launch utilisation (Table X, Fig 5)\n  \
         classify FILE               classify an edge-list graph into road/social/random\n  \
         codegen PROGRAM [--opts \"sg, fg8\"]\n                              compile a built-in DSL program and print its OpenCL\n  \
         compile FILE [--opts OPTS]  compile a .irgl source file and print its OpenCL\n  \
         run-dsl FILE [--input I] [--chip C] [--opts OPTS] [--tier T]\n                              execute a .irgl program on a simulated chip;\n                              --tier ast|bytecode|native picks the executor\n                              (default native; also: GPP_IRGL_TIER, and --ast\n                              as legacy shorthand for --tier ast)\n  \
         sensitivity [--data FILE] [--trials N] [--threads N]\n                              sample-size sensitivity sweep (Section IX-b)\n  \
         sweep [--chips N] [--chips-file FILE] [--scale S] [--seed N] [--threads N] [--out FILE] [--emit-chips FILE] [--trace-cache DIR] [--per-chip] [--smoke]\n                              price a latin-hypercube chip cloud chip-major against the\n                              trace arena and invert the win/loss boundaries; --chips-file\n                              sweeps an explicit JSON chip list instead; --per-chip forces\n                              the chip-at-a-time oracle (byte-identical output, for CI);\n                              --smoke is a tiny-scale CI preset\n  \
         portfolio [--data FILE] [--chips-file FILE] [--k N] [--objective geomean|worst] [--exact-max N] [--beam N] [--scale S] [--seed N] [--threads N] [--per-chip] [--out FILE] [--metrics-out FILE] [--smoke]\n                              k-version portfolio search: the portability-cost curve\n                              (best-of-k slowdown vs oracle for k = 1..N) over the study\n                              dataset, exact for k <= --exact-max then beam search;\n                              --chips-file prices a sweep chip cloud instead of the six\n                              study chips; --smoke runs a tiny in-memory study preset\n  \
         predict [--data FILE] [--probes K] [--threads N]\n                              leave-one-out predictive model (Section IX-b)\n  \
         export-csv [--data FILE] [--out FILE]\n                              dataset medians as CSV\n\n\
         --threads 0 (the default) resolves via GPP_STUDY_THREADS (read\n\
         once per process), then the machine's parallelism. N caps how many\n\
         of the persistent worker pool's threads serve each fan-out — the\n\
         pool is never torn down between phases — and all output is\n\
         byte-identical at any thread count",
    )
}

fn parse_scale(args: &Args) -> Result<StudyScale, String> {
    match args.opt("scale").unwrap_or("full") {
        "full" => Ok(StudyScale::Full),
        "small" => Ok(StudyScale::Small),
        "tiny" => Ok(StudyScale::Tiny),
        other => Err(format!("unknown scale `{other}` (full | small | tiny)")),
    }
}

/// Default dataset cache location shared with the bench regenerators.
fn default_data_path() -> PathBuf {
    PathBuf::from("target/study/dataset.json")
}

/// Resolves the analysis worker count: `--threads N` taken literally
/// when positive, otherwise the `GPP_STUDY_THREADS` environment
/// variable (parsed once per process and cached), otherwise the
/// machine's available parallelism. The count caps the workers serving
/// each fan-out — study/sweep phases draw them from `gpp-par`'s
/// persistent pool — and the analysis output is byte-identical at any
/// thread count.
fn analysis_threads(args: &Args) -> Result<usize, String> {
    Ok(gpp_par::effective_threads(args.num("threads", 0usize)?))
}

fn load_dataset(args: &Args) -> Result<Dataset, String> {
    let path = args
        .opt("data")
        .map(PathBuf::from)
        .unwrap_or_else(default_data_path);
    if path.exists() && !args.flag("fresh") {
        Dataset::load_json(&path).map_err(|e| format!("cannot load {}: {e}", path.display()))
    } else {
        eprintln!("[no dataset at {}; running the full study]", path.display());
        let ds = run_study(&StudyConfig::default());
        ds.save_json(&path)
            .map_err(|e| format!("cannot cache dataset: {e}"))?;
        Ok(ds)
    }
}

fn chips(out: &mut dyn Write) -> Result<(), String> {
    let mut t = Table::new(["Vendor", "Chip", "#CUs", "SG size", "Launch overhead (us)"]);
    for chip in study_chips() {
        t.row([
            chip.vendor.to_string(),
            chip.name.clone(),
            chip.num_cus.to_string(),
            chip.subgroup_size.to_string(),
            format!(
                "{:.1}",
                (chip.kernel_launch_cost + chip.host_copy_cost) / 1_000.0
            ),
        ]);
    }
    w(out, t)
}

fn study(args: &Args, out: &mut dyn Write) -> Result<(), String> {
    let cfg = StudyConfig {
        scale: parse_scale(args)?,
        seed: args.num("seed", StudyConfig::default().seed)?,
        runs: args.num("runs", 3usize)?,
        threads: args.num("threads", 0usize)?,
        dsl_programs: args.flag("dsl"),
        ..StudyConfig::default()
    };
    // With --metrics-out, the process-wide metrics registry records the
    // pipeline's counters, gauges, and latency histograms for the
    // duration of the run and the snapshot lands in the given file.
    // Like tracing, metrics only observe — the dataset is
    // byte-identical either way.
    let metrics_out = args.opt("metrics-out");
    if metrics_out.is_some() {
        metrics::global().reset();
        metrics::global().set_enabled(true);
    }
    // With --trace-out, events stream to the file as JSONL and are also
    // kept in memory for the end-of-run summary. A memory-only tracer
    // rides along whenever a trace cache or a metrics snapshot is in
    // play, so cache hit/miss totals are reported even without a trace
    // sink configured. The dataset itself is byte-identical with
    // tracing on or off.
    let memory = Arc::new(MemorySink::new());
    let tracer = match args.opt("trace-out") {
        Some(path) => {
            let file = FileSink::create(Path::new(path)).map_err(|e| format!("{path}: {e}"))?;
            Tracer::new(Arc::new(TeeSink::new(vec![memory.clone(), Arc::new(file)])))
        }
        None if args.opt("trace-cache").is_some() || metrics_out.is_some() => {
            Tracer::new(memory.clone())
        }
        None => Tracer::disabled(),
    };
    // With --trace-cache, recorded traces persist across invocations; a
    // warm cache skips the collect-traces phase (same dataset, byte for
    // byte). Deleting the directory invalidates the cache.
    let cache = match args.opt("trace-cache") {
        None => None,
        Some(dir) => {
            Some(TraceCache::new(Path::new(dir)).map_err(|e| format!("{dir}: {e}"))?)
        }
    };
    let started = std::time::Instant::now();
    let ds = match args.opt("chips") {
        None => run_study_cached(&cfg, &study_chips(), &tracer, cache.as_ref()),
        Some(file) => {
            let text = std::fs::read_to_string(file).map_err(|e| format!("{file}: {e}"))?;
            let chips: Vec<ChipProfile> =
                serde_json::from_str(&text).map_err(|e| format!("{file}: {e}"))?;
            if chips.is_empty() {
                return Err(format!("{file}: chip list is empty"));
            }
            run_study_cached(&cfg, &chips, &tracer, cache.as_ref())
        }
    };
    tracer.flush();
    let path = args
        .opt("out")
        .map(PathBuf::from)
        .unwrap_or_else(default_data_path);
    ds.save_json(&path)
        .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    w(
        out,
        format!(
            "collected {} cells x 96 configurations x {} runs in {:?}\nsaved to {}",
            ds.cells.len(),
            ds.runs,
            started.elapsed(),
            path.display()
        ),
    )?;
    if tracer.is_enabled() {
        let summary = TraceSummary::from_events(&memory.take());
        w(
            out,
            format!(
                "pipeline: {} traces compiled, {} cells priced in {:.1} ms wall",
                summary.traces_compiled,
                summary.cells_priced,
                summary.total_wall_ns / 1e6
            ),
        )?;
        if cache.is_some() {
            w(
                out,
                format!(
                    "trace cache: {} hits, {} misses",
                    summary.trace_cache_hits, summary.trace_cache_misses
                ),
            )?;
        }
        if metrics_out.is_some() {
            for p in &summary.phases {
                metrics::gauge(&format!("study.phase_seconds.{}", p.name), p.wall_ns / 1e9);
            }
        }
        // The full phase table and slowest-cell listing stay tied to an
        // explicit trace sink; cache and metrics runs only get the two
        // summary lines above.
        if args.opt("trace-out").is_some() {
            let mut t = Table::new(["Phase", "Wall (ms)", "Workers", "Busy"]);
            for p in &summary.phases {
                t.row([
                    p.name.clone(),
                    format!("{:.1}", p.wall_ns / 1e6),
                    p.workers.to_string(),
                    percent(p.busy_frac),
                ]);
            }
            w(out, &t)?;
            w(out, "slowest cells:")?;
            for (label, ns) in &summary.slowest_cells {
                w(out, format!("  {:>10.2} ms  {label}", ns / 1e6))?;
            }
            if let Some(trace_path) = args.opt("trace-out") {
                w(out, format!("trace written to {trace_path}"))?;
            }
        }
    }
    if let Some(path) = metrics_out {
        metrics::gauge("study.wall_seconds", started.elapsed().as_secs_f64());
        let snapshot = metrics::global().snapshot();
        metrics::global().set_enabled(false);
        std::fs::write(path, snapshot.to_json()).map_err(|e| format!("{path}: {e}"))?;
        w(
            out,
            format!(
                "metrics: {} counters, {} gauges, {} histograms written to {path}",
                snapshot.counters.len(),
                snapshot.gauges.len(),
                snapshot.histograms.len()
            ),
        )?;
    }
    Ok(())
}

/// Per-mechanism cost attribution: record one application trace, replay
/// it on each chip under one configuration, and tabulate where the
/// modelled nanoseconds go (Table VI's narrative, made quantitative).
fn explain(args: &Args, out: &mut dyn Write) -> Result<(), String> {
    let app_name = args.opt("app").unwrap_or("bfs-wl");
    let input_name = args.opt("input").unwrap_or("road");
    let scale = match args.opt("scale") {
        None => StudyScale::Small,
        Some(_) => parse_scale(args)?,
    };
    let seed = args.num("seed", StudyConfig::default().seed)?;
    let cfg = config_opt(args)?;
    let chips = match args.opt("chip") {
        None => study_chips(),
        Some(name) => vec![study_chip(name).ok_or_else(|| format!("unknown chip `{name}`"))?],
    };
    let app = gpp_apps::application(app_name)
        .ok_or_else(|| format!("unknown application `{app_name}`"))?;
    let inputs = gpp_apps::study_inputs(scale, seed);
    let input = inputs
        .iter()
        .find(|i| i.name == input_name)
        .ok_or_else(|| format!("unknown input `{input_name}` (road | social | random)"))?;
    let mut recorder = Recorder::new();
    app.run(&input.graph, &mut recorder);
    let compiled = CompiledTrace::new(recorder.into_trace());
    let priced: Vec<(ChipProfile, f64, CostBreakdown)> = chips
        .iter()
        .map(|chip| {
            let machine = Machine::new(chip.clone());
            let (stats, breakdown) = compiled.replay_explained(&machine, cfg);
            (chip.clone(), stats.time_ns, breakdown)
        })
        .collect();
    w(
        out,
        format!(
            "cost attribution for {app_name} on {input_name} ({} nodes) under `{cfg}` — modelled us (share)",
            input.graph.num_nodes()
        ),
    )?;
    let mut headers = vec!["Component".to_string()];
    headers.extend(priced.iter().map(|(c, _, _)| c.name.clone()));
    let mut t = Table::new(headers);
    for (label, _) in CostBreakdown::default().components() {
        let mut row = vec![label.to_string()];
        for (_, _, b) in &priced {
            let v = b
                .components()
                .iter()
                .find(|(l, _)| *l == label)
                .map_or(0.0, |&(_, v)| v);
            row.push(format!("{:.1} ({})", v / 1_000.0, percent(b.share(label))));
        }
        t.row(row);
    }
    let mut row = vec!["total".to_string()];
    for (_, time_ns, breakdown) in &priced {
        debug_assert!(
            (breakdown.total() - time_ns).abs() <= 1e-9 * time_ns.abs(),
            "attribution must sum to the priced total"
        );
        row.push(format!("{:.1}", time_ns / 1_000.0));
    }
    t.row(row);
    w(out, &t)?;
    let width = footer_width(priced.iter().map(|(c, _, _)| c.name.as_str()));
    for (chip, _, _) in &priced {
        w(
            out,
            format!("{:>width$}: {}", chip.name, chip_support(&chip.name).label()),
        )?;
    }
    Ok(())
}

/// Width of the name column in per-chip footer lines: the longest name
/// present (so long names stay aligned instead of overflowing a fixed
/// field), floored at 8 to keep the historical alignment for the short
/// study-chip names.
fn footer_width<'a>(names: impl IntoIterator<Item = &'a str>) -> usize {
    names
        .into_iter()
        .map(|n| n.chars().count())
        .max()
        .unwrap_or(0)
        .max(8)
}

fn analyze(args: &Args, out: &mut dyn Write) -> Result<(), String> {
    let ds = load_dataset(args)?;
    let threads = analysis_threads(args)?;
    let stats = DatasetStats::new(&ds);
    let mut t = Table::new([
        "Strategy",
        "Dims",
        "Speedups",
        "Slowdowns",
        "GM vs oracle",
        "GM vs baseline",
    ]);
    for s in Strategy::ALL {
        let a = build_assignment_par(&stats, s, threads, &Tracer::disabled());
        let e = evaluate_assignment(&stats, &a);
        t.row([
            e.strategy.clone(),
            s.dimensions().to_string(),
            e.speedups.to_string(),
            e.slowdowns.to_string(),
            format!("{:.3}", e.geomean_slowdown_vs_oracle),
            format!("{:.3}", e.geomean_speedup_vs_baseline),
        ]);
    }
    w(out, t)
}

fn chip_function_cmd(args: &Args, out: &mut dyn Write) -> Result<(), String> {
    let ds = load_dataset(args)?;
    let threads = analysis_threads(args)?;
    let stats = DatasetStats::new(&ds);
    let table = chip_function_par(&stats, threads, &Tracer::disabled());
    let mut headers = vec!["Optimisation".to_string()];
    headers.extend(table.iter().map(|(c, _)| c.clone()));
    let mut t = Table::new(headers);
    for opt in gpp_sim::opts::Optimization::ALL {
        let mut row = vec![opt.name().to_string()];
        for (_, analysis) in &table {
            let d = analysis.decision(opt);
            let mark = match d.decision {
                Decision::Enable => "Y",
                Decision::Disable => "n",
                Decision::Inconclusive => "?",
            };
            row.push(format!("{mark} {:.2}", d.effect_size));
        }
        t.row(row);
    }
    w(out, &t)?;
    let width = footer_width(table.iter().map(|(c, _)| c.as_str()));
    for (chip, analysis) in &table {
        w(out, format!("{chip:>width$}: {}", analysis.config))?;
    }
    Ok(())
}

fn heatmap_cmd(args: &Args, out: &mut dyn Write) -> Result<(), String> {
    let ds = load_dataset(args)?;
    let stats = DatasetStats::new(&ds);
    let hm = heatmap(&stats);
    let mut headers = vec!["run \\ tuned".to_string()];
    headers.extend(hm.chips.iter().cloned());
    let mut t = Table::new(headers);
    for (i, chip) in hm.chips.iter().enumerate() {
        let mut row = vec![chip.clone()];
        row.extend(hm.matrix[i].iter().map(|v| format!("{v:.2}")));
        t.row(row);
    }
    w(out, t)
}

fn ranking_cmd(args: &Args, out: &mut dyn Write) -> Result<(), String> {
    let ds = load_dataset(args)?;
    let stats = DatasetStats::new(&ds);
    let rows = ranking(&stats);
    let show: usize = args.num("top", 10usize)?;
    let mut t = Table::new(["Rank", "Opts", "Slowdowns", "Speedups", "Geomean"]);
    for (i, r) in rows.iter().enumerate() {
        if i < show || i >= rows.len() - show {
            t.row([
                i.to_string(),
                r.config.to_string(),
                r.slowdowns.to_string(),
                r.speedups.to_string(),
                format!("{:.2}", r.geomean_speedup),
            ]);
        }
    }
    w(out, t)
}

fn extremes_cmd(args: &Args, out: &mut dyn Write) -> Result<(), String> {
    let ds = load_dataset(args)?;
    let stats = DatasetStats::new(&ds);
    let mut t = Table::new(["Chip", "Max speedup", "Test", "Max slowdown", "Test"]);
    for e in extremes(&stats) {
        t.row([
            e.chip.clone(),
            ratio(e.max_speedup),
            format!("{}/{}", e.speedup_test.0, e.speedup_test.1),
            ratio(e.max_slowdown),
            format!("{}/{}", e.slowdown_test.0, e.slowdown_test.1),
        ]);
    }
    w(out, t)
}

fn microbench(out: &mut dyn Write) -> Result<(), String> {
    let chips = study_chips();
    let mut headers = vec!["Probe".to_string()];
    headers.extend(chips.iter().map(|c| c.name.clone()));
    let mut t = Table::new(headers);
    let mut row = vec!["sg-cmb".to_string()];
    row.extend(chips.iter().map(|c| ratio(sg_cmb(c, SG_CMB_N).speedup())));
    t.row(row);
    let mut row = vec!["m-divg".to_string()];
    row.extend(
        chips
            .iter()
            .map(|c| ratio(m_divg(c, M_DIVG_ROUNDS).speedup())),
    );
    t.row(row);
    let mut row = vec!["util @10us".to_string()];
    row.extend(
        chips
            .iter()
            .map(|c| format!("{:.2}", utilisation(c, 10_000.0, LAUNCHES))),
    );
    t.row(row);
    w(out, t)
}

fn classify(args: &Args, out: &mut dyn Write) -> Result<(), String> {
    let path = args
        .positional
        .first()
        .ok_or("usage: gpp classify <edge-list-file>")?;
    let file = std::fs::File::open(Path::new(path)).map_err(|e| format!("{path}: {e}"))?;
    let graph = graph_io::read_edge_list(std::io::BufReader::new(file))
        .map_err(|e| format!("{path}: {e}"))?;
    let stats = properties::degree_stats(&graph);
    let class = properties::classify(&graph);
    w(
        out,
        format!(
            "{path}: {} nodes, {} arcs, degree cv {:.2}, diameter ~{}, clustering {:.3}, assortativity {:+.2}, class {class}",
            graph.num_nodes(),
            graph.num_edges(),
            stats.cv,
            properties::estimate_diameter(&graph),
            properties::clustering_coefficient(&graph),
            properties::degree_assortativity(&graph),
        ),
    )
}

fn codegen_cmd(args: &Args, out: &mut dyn Write) -> Result<(), String> {
    let name = args.positional.first().ok_or_else(|| {
        let names: Vec<String> = programs::all().iter().map(|p| p.name.clone()).collect();
        format!("usage: gpp codegen <program> — one of {}", names.join(", "))
    })?;
    let program = programs::all()
        .into_iter()
        .find(|p| &p.name == name)
        .ok_or_else(|| format!("unknown program `{name}`"))?;
    let cfg = match args.opt("opts") {
        None => OptConfig::baseline(),
        Some(text) => OptConfig::parse(text).ok_or_else(|| format!("bad --opts `{text}`"))?,
    };
    let plan = transform::plan(&program, cfg).map_err(|e| e.to_string())?;
    let text = codegen::opencl(&program, &plan).map_err(|e| e.to_string())?;
    w(out, text)
}

fn parse_irgl_file(path: &str) -> Result<gpp_irgl::Program, String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let program = parser::parse(&src).map_err(|e| format!("{path}:{e}"))?;
    gpp_irgl::validate_program(&program).map_err(|e| format!("{path}: {e}"))?;
    Ok(program)
}

fn config_opt(args: &Args) -> Result<OptConfig, String> {
    match args.opt("opts") {
        None => Ok(OptConfig::baseline()),
        Some(text) => OptConfig::parse(text).ok_or_else(|| format!("bad --opts `{text}`")),
    }
}

fn compile_cmd(args: &Args, out: &mut dyn Write) -> Result<(), String> {
    let path = args
        .positional
        .first()
        .ok_or("usage: gpp compile <file.irgl> [--opts OPTS]")?;
    let program = parse_irgl_file(path)?;
    let cfg = config_opt(args)?;
    let plan = transform::plan(&program, cfg).map_err(|e| e.to_string())?;
    let text = codegen::opencl(&program, &plan).map_err(|e| e.to_string())?;
    w(out, text)
}

fn run_dsl(args: &Args, out: &mut dyn Write) -> Result<(), String> {
    let path = args.positional.first().ok_or(
        "usage: gpp run-dsl <file.irgl> [--input road|social|random] [--chip NAME] [--opts OPTS] [--tier ast|bytecode|native]",
    )?;
    let program = parse_irgl_file(path)?;
    let cfg = config_opt(args)?;
    let chip_name = args.opt("chip").unwrap_or("R9");
    let chip = study_chip(chip_name).ok_or_else(|| format!("unknown chip `{chip_name}`"))?;
    let inputs = gpp_apps::study_inputs(StudyScale::Small, 7);
    let input_name = args.opt("input").unwrap_or("social");
    let input = inputs
        .iter()
        .find(|i| i.name == input_name)
        .ok_or_else(|| format!("unknown input `{input_name}` (road | social | random)"))?;
    let machine = Machine::new(chip);
    let mut session = machine.session(cfg);
    // --tier picks the executor explicitly; --ast is the legacy spelling
    // of --tier ast; otherwise GPP_IRGL_TIER / the native default apply.
    // All three tiers produce identical results and kernel reports.
    let tier = match args.opt("tier") {
        Some(text) => {
            gpp_irgl::Tier::parse(text).ok_or_else(|| format!("bad --tier `{text}` (ast | bytecode | native)"))?
        }
        None if args.flag("ast") => gpp_irgl::Tier::Ast,
        None => gpp_irgl::Tier::from_env(),
    };
    let result = interp::execute_tier(tier, &program, &input.graph, &mut session)
        .map_err(|e| format!("execution failed: {e}"))?;
    let stats = session.finish();
    let output = result.output(&program);
    let finite = output.iter().filter(|v| v.is_finite()).count();
    w(
        out,
        format!(
            "{} on {} ({} nodes) under `{cfg}` on {}:\n  modelled time {:.1} us, {} kernels, {} launches, {} iterations\n  output `{}`: {} finite values, first = {:?}",
            program.name,
            input.name,
            input.graph.num_nodes(),
            machine.chip().name,
            stats.time_ns / 1_000.0,
            stats.kernels,
            stats.launches,
            result.iterations,
            program.fields[program.output].name,
            finite,
            &output[..output.len().min(5)],
        ),
    )
}

fn sensitivity_cmd(args: &Args, out: &mut dyn Write) -> Result<(), String> {
    let ds = load_dataset(args)?;
    let threads = analysis_threads(args)?;
    let report = subsample_sensitivity_par(
        &ds,
        &[1.0, 0.5, 0.25, 0.1],
        args.num("trials", 5usize)?,
        0x5eed,
        threads,
        &Tracer::disabled(),
    );
    let mut t = Table::new(["Fraction", "Tests", "Verdict agreement", "Config agreement"]);
    for p in &report.points {
        t.row([
            percent(p.fraction),
            p.tests_kept.to_string(),
            percent(p.decision_agreement),
            percent(p.config_agreement),
        ]);
    }
    w(out, t)
}

fn export_chips(args: &Args, out: &mut dyn Write) -> Result<(), String> {
    let path = args
        .positional
        .first()
        .ok_or("usage: gpp export-chips <file.json>")?;
    let chips = study_chips();
    let text = serde_json::to_string_pretty(&chips).map_err(|e| e.to_string())?;
    std::fs::write(path, text).map_err(|e| format!("{path}: {e}"))?;
    w(
        out,
        format!(
            "wrote {} chip models to {path}; edit and pass back via `gpp study --chips`",
            chips.len()
        ),
    )
}

fn predict_cmd(args: &Args, out: &mut dyn Write) -> Result<(), String> {
    let ds = load_dataset(args)?;
    let threads = analysis_threads(args)?;
    let stats = DatasetStats::new(&ds);
    let k: usize = args.num("probes", 8usize)?;
    if k == 0 {
        return Err("--probes must be at least 1".into());
    }
    let e = leave_one_out_par(&stats, k, threads, &Tracer::disabled());
    w(
        out,
        format!(
            "leave-one-out prediction with {} probes: geomean vs oracle {:.3}, within 5% of oracle {}, beats baseline {}",
            e.probes,
            e.geomean_vs_oracle,
            percent(e.near_oracle),
            percent(e.beats_baseline)
        ),
    )
}

fn export_csv(args: &Args, out: &mut dyn Write) -> Result<(), String> {
    let ds = load_dataset(args)?;
    let mut csv = String::from("app,input,chip,config,median_ns\n");
    for cell in &ds.cells {
        for (idx, runs) in cell.times.iter().enumerate() {
            let mut sorted = runs.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            let median = sorted[sorted.len() / 2];
            csv.push_str(&format!(
                "{},{},{},\"{}\",{median}\n",
                cell.app,
                cell.input,
                cell.chip,
                OptConfig::from_index(idx)
            ));
        }
    }
    match args.opt("out") {
        Some(path) => {
            std::fs::write(path, &csv).map_err(|e| format!("{path}: {e}"))?;
            w(out, format!("wrote {} rows to {path}", ds.cells.len() * 96))
        }
        None => w(out, csv),
    }
}

/// Parametric chip sweep: generate (or load) a chip cloud, price it
/// chip-major against the trace arena, and invert the per-optimisation
/// win/loss boundaries against the chip axes. The printed report and the
/// `--out` JSON contain no timings or timestamps, so a batched run and a
/// `--per-chip` oracle run produce byte-identical output — CI `cmp`s
/// the two files.
fn sweep_cmd(args: &Args, out: &mut dyn Write) -> Result<(), String> {
    let smoke = args.flag("smoke");
    let scale = match args.opt("scale") {
        Some(_) => parse_scale(args)?,
        None if smoke => StudyScale::Tiny,
        None => StudyScale::Small,
    };
    let cfg = SweepConfig {
        scale,
        seed: args.num("seed", SweepConfig::default().seed)?,
        threads: args.num("threads", 0usize)?,
        per_chip: args.flag("per-chip"),
        ..SweepConfig::default()
    };
    let chips: Vec<ChipProfile> = match args.opt("chips-file") {
        Some(file) => {
            let text = std::fs::read_to_string(file).map_err(|e| format!("{file}: {e}"))?;
            let chips: Vec<ChipProfile> =
                serde_json::from_str(&text).map_err(|e| format!("{file}: {e}"))?;
            if chips.is_empty() {
                return Err(format!("{file}: chip list is empty"));
            }
            for (i, chip) in chips.iter().enumerate() {
                chip.validate()
                    .map_err(|e| format!("{file}: chip {i}: {e}"))?;
            }
            chips
        }
        None => {
            let n: usize = args.num("chips", if smoke { 32 } else { 512 })?;
            if n < 2 {
                return Err("--chips must be at least 2".into());
            }
            latin_hypercube_chips(n, cfg.seed)
        }
    };
    if let Some(file) = args.opt("emit-chips") {
        let text = serde_json::to_string_pretty(&chips).map_err(|e| e.to_string())?;
        std::fs::write(file, text).map_err(|e| format!("{file}: {e}"))?;
    }
    let cache = match args.opt("trace-cache") {
        None => None,
        Some(dir) => Some(TraceCache::new(Path::new(dir)).map_err(|e| format!("{dir}: {e}"))?),
    };
    let sweep = run_sweep_cached(&cfg, &chips, cache.as_ref());
    let report = gpp_core::invert_sweep(&chips, &sweep.opts, &sweep.log_ratios);
    w(
        out,
        format!(
            "swept {} chips x 96 configurations over {} (app, input) pairs",
            sweep.chips.len(),
            sweep.pairs
        ),
    )?;
    w(out, gpp_core::sweep_table(&report))?;
    if let Some(path) = args.opt("out") {
        let json = serde_json::json!({ "sweep": &sweep, "report": &report });
        let text = serde_json::to_string_pretty(&json).map_err(|e| e.to_string())?;
        if let Some(dir) = Path::new(path).parent() {
            std::fs::create_dir_all(dir).map_err(|e| format!("{path}: {e}"))?;
        }
        std::fs::write(path, text).map_err(|e| format!("{path}: {e}"))?;
        w(out, format!("saved to {path}"))?;
    }
    Ok(())
}

/// k-version portfolio search: build the dense slowdown matrix — from
/// the study dataset, a tiny in-memory smoke study, or a `gpp sweep`
/// chip cloud priced through the batched replay path — and print the
/// portability-cost curve: the best k-version portfolio's slowdown vs
/// the per-cell oracle for k = 1..=`--k`, exact up to `--exact-max`,
/// beam search above. The curve is byte-identical at any thread count.
fn portfolio_cmd(args: &Args, out: &mut dyn Write) -> Result<(), String> {
    let smoke = args.flag("smoke");
    let objective = Objective::parse(args.opt("objective").unwrap_or("geomean"))?;
    let defaults = SearchParams::default();
    let k_max: usize = args.num("k", if smoke { 4 } else { defaults.k_max })?;
    let exact_k_max: usize = args.num("exact-max", if smoke { 2 } else { defaults.exact_k_max })?;
    let beam_width: usize = args.num("beam", defaults.beam_width)?;
    let threads: usize = args.num("threads", 0usize)?;
    if !(1..=NUM_CONFIGS).contains(&k_max) {
        return Err(format!("--k must be in 1..={NUM_CONFIGS}, got {k_max}"));
    }
    if exact_k_max < 1 {
        return Err("--exact-max must be at least 1".into());
    }
    if beam_width == 0 {
        return Err("--beam must be at least 1".into());
    }
    // With --metrics-out, the registry records the portfolio.* counters
    // and the matrix-build histogram; like everywhere else, metrics
    // only observe — the curve is byte-identical either way.
    let metrics_out = args.opt("metrics-out");
    if metrics_out.is_some() {
        metrics::global().reset();
        metrics::global().set_enabled(true);
    }
    let (matrix, source) = if let Some(file) = args.opt("chips-file") {
        let text = std::fs::read_to_string(file).map_err(|e| format!("{file}: {e}"))?;
        let chips: Vec<ChipProfile> =
            serde_json::from_str(&text).map_err(|e| format!("{file}: {e}"))?;
        if chips.is_empty() {
            return Err(format!("{file}: chip list is empty"));
        }
        for (i, chip) in chips.iter().enumerate() {
            chip.validate()
                .map_err(|e| format!("{file}: chip {i}: {e}"))?;
        }
        let scale = match args.opt("scale") {
            Some(_) => parse_scale(args)?,
            None if smoke => StudyScale::Tiny,
            None => StudyScale::Small,
        };
        let cfg = SweepConfig {
            scale,
            seed: args.num("seed", SweepConfig::default().seed)?,
            threads,
            per_chip: args.flag("per-chip"),
            ..SweepConfig::default()
        };
        let cache = match args.opt("trace-cache") {
            None => None,
            Some(dir) => Some(TraceCache::new(Path::new(dir)).map_err(|e| format!("{dir}: {e}"))?),
        };
        let cloud = price_cloud_cached(&cfg, &chips, cache.as_ref());
        let matrix = SlowdownMatrix::from_cell_times(&cloud.times);
        let source = format!(
            "{} cells ({} pairs x {} chips priced from {file})",
            cloud.times.len(),
            cloud.times.len() / chips.len(),
            chips.len()
        );
        (Arc::new(matrix), source)
    } else {
        let ds = if smoke && args.opt("data").is_none() {
            run_study(&StudyConfig {
                threads,
                ..StudyConfig::tiny()
            })
        } else {
            load_dataset(args)?
        };
        let stats = DatasetStats::new(&ds);
        let matrix = SlowdownMatrix::from_stats(&stats);
        let source = format!("{} cells from the study dataset", stats.num_cells());
        (Arc::new(matrix), source)
    };
    let params = SearchParams {
        objective,
        k_max,
        exact_k_max,
        beam_width,
        threads,
    };
    let curve = gpp_core::search_curve(&matrix, &params);
    w(
        out,
        format!(
            "portability-cost curve over {source}, objective {}",
            curve.objective
        ),
    )?;
    let mut t = Table::new(["k", "Slowdown", "Search", "Configurations"]);
    for p in &curve.points {
        t.row([
            p.k.to_string(),
            format!("{:.4}x", p.slowdown),
            if p.exact { "exact" } else { "beam" }.to_owned(),
            p.configs.join(" "),
        ]);
    }
    w(out, t)?;
    w(
        out,
        format!(
            "search: {} candidates evaluated, {} prefixes pruned, {} beam rounds",
            curve.candidates_evaluated, curve.prefixes_pruned, curve.beam_rounds
        ),
    )?;
    if let Some(path) = args.opt("out") {
        let text = serde_json::to_string_pretty(&curve).map_err(|e| e.to_string())?;
        if let Some(dir) = Path::new(path).parent() {
            std::fs::create_dir_all(dir).map_err(|e| format!("{path}: {e}"))?;
        }
        std::fs::write(path, text).map_err(|e| format!("{path}: {e}"))?;
        w(out, format!("saved to {path}"))?;
    }
    if let Some(path) = metrics_out {
        let snapshot = metrics::global().snapshot();
        metrics::global().set_enabled(false);
        std::fs::write(path, snapshot.to_json()).map_err(|e| format!("{path}: {e}"))?;
        w(
            out,
            format!(
                "metrics: {} counters, {} gauges, {} histograms written to {path}",
                snapshot.counters.len(),
                snapshot.gauges.len(),
                snapshot.histograms.len()
            ),
        )?;
    }
    Ok(())
}

/// Self-profiling wrapper: run a study or sweep workload with the
/// phase profiler and the metrics registry attached, then print the
/// aggregated phase tree (total/self wall time, worker utilisation),
/// throughput, and peak RSS. Profiling is pure observation — the
/// workload's outputs are byte-identical to an unprofiled run — so
/// this is the cheap way to answer "where does the pipeline spend its
/// time" without re-plumbing any flags.
fn profile_cmd(args: &Args, out: &mut dyn Write) -> Result<(), String> {
    let target = args
        .positional
        .first()
        .map_or("study", String::as_str)
        .to_owned();
    if target != "study" && target != "sweep" {
        return Err(format!("cannot profile `{target}` (study | sweep)"));
    }
    let smoke = args.flag("smoke");
    let scale = match args.opt("scale") {
        Some(_) => parse_scale(args)?,
        None if smoke => StudyScale::Tiny,
        None => StudyScale::Small,
    };
    let threads = args.num("threads", 0usize)?;
    metrics::global().reset();
    metrics::global().set_enabled(true);
    let profiler = PhaseProfiler::new();
    let tracer = profiler.tracer();
    let started = std::time::Instant::now();
    // (unit label, total count) pairs for the throughput lines.
    let throughput: Vec<(&str, f64)> = match target.as_str() {
        "study" => {
            let cfg = StudyConfig {
                scale,
                seed: args.num("seed", StudyConfig::default().seed)?,
                runs: args.num("runs", 3usize)?,
                threads,
                dsl_programs: args.flag("dsl"),
                ..StudyConfig::default()
            };
            let ds = run_study_cached(&cfg, &study_chips(), &tracer, None);
            vec![
                ("cells", ds.cells.len() as f64),
                ("configurations", (ds.cells.len() * 96) as f64),
            ]
        }
        _ => {
            let cfg = SweepConfig {
                scale,
                seed: args.num("seed", SweepConfig::default().seed)?,
                threads,
                per_chip: args.flag("per-chip"),
                ..SweepConfig::default()
            };
            let n: usize = args.num("chips", if smoke { 32 } else { 512 })?;
            if n < 2 {
                return Err("--chips must be at least 2".into());
            }
            let sweep = run_sweep_traced(&cfg, &latin_hypercube_chips(n, cfg.seed), &tracer, None);
            vec![
                ("chips", sweep.chips.len() as f64),
                (
                    "chip-configs",
                    (sweep.chips.len() * sweep.pairs * 96) as f64,
                ),
            ]
        }
    };
    let wall = started.elapsed().as_secs_f64();
    metrics::gauge(&format!("{target}.wall_seconds"), wall);
    let snapshot = metrics::global().snapshot();
    metrics::global().set_enabled(false);
    let report = profiler.finish();
    let mut t = Table::new(["Phase", "Total (ms)", "Self (ms)", "Count", "Workers", "Busy"]);
    for root in &report.roots {
        for (depth, node) in root.flattened() {
            t.row([
                format!("{}{}", "  ".repeat(depth), node.name),
                format!("{:.1}", node.wall_ns / 1e6),
                format!("{:.1}", node.self_ns / 1e6),
                node.count.to_string(),
                node.workers.to_string(),
                percent(node.busy_frac),
            ]);
        }
    }
    w(out, &t)?;
    // The top-level phases should tile the run span — coverage well
    // below 100% means a stage is running uninstrumented.
    for root in &report.roots {
        w(
            out,
            format!(
                "phase coverage of `{}`: {} of {:.1} ms wall",
                root.name,
                percent(root.children_wall_ns() / root.wall_ns.max(1.0)),
                root.wall_ns / 1e6
            ),
        )?;
    }
    for (unit, count) in &throughput {
        w(
            out,
            format!(
                "throughput: {:.0} {unit}/s ({count:.0} {unit} in {wall:.2} s wall)",
                count / wall.max(f64::MIN_POSITIVE)
            ),
        )?;
    }
    if let Some(rss) = report.peak_rss_bytes {
        w(
            out,
            format!("peak rss: {:.1} MiB", rss as f64 / (1024.0 * 1024.0)),
        )?;
    }
    if let Some(path) = args.opt("metrics-out") {
        std::fs::write(path, snapshot.to_json()).map_err(|e| format!("{path}: {e}"))?;
        w(out, format!("metrics written to {path}"))?;
    }
    if let Some(path) = args.opt("prometheus-out") {
        std::fs::write(path, expose::to_prometheus(&snapshot))
            .map_err(|e| format!("{path}: {e}"))?;
        w(out, format!("prometheus metrics written to {path}"))?;
    }
    Ok(())
}

/// Regression gate: compare a current metrics snapshot (or a
/// regenerated bench baseline) against the checked-in baseline with a
/// relative tolerance, and fail — nonzero process exit — when any
/// shared key moves the wrong way beyond it. `--smoke` skips the
/// comparison and only sanity-checks the baseline itself (numbers
/// finite, identity invariants not recorded as false), which needs no
/// fresh measurement and so can run on every CI push.
fn bench_check(args: &Args, out: &mut dyn Write) -> Result<(), String> {
    let baseline_path = args.opt("baseline").unwrap_or("BENCH_study.json");
    let text =
        std::fs::read_to_string(baseline_path).map_err(|e| format!("{baseline_path}: {e}"))?;
    let baseline: serde_json::Value =
        serde_json::from_str(&text).map_err(|e| format!("{baseline_path}: {e}"))?;
    if args.flag("smoke") {
        let flat = regress::flatten(&baseline);
        let mut problems = Vec::new();
        for (key, value) in &flat {
            if !value.is_finite() {
                problems.push(format!("`{key}` is not finite ({value})"));
            } else if key.contains("identical") && *value < 1.0 {
                problems.push(format!("identity invariant `{key}` is recorded as false"));
            } else if (key.ends_with("_seconds") || key.ends_with("_bytes")) && *value < 0.0 {
                problems.push(format!("`{key}` is negative ({value})"));
            }
        }
        if !problems.is_empty() {
            return Err(format!(
                "bench-check --smoke: {baseline_path}: {}",
                problems.join("; ")
            ));
        }
        return w(
            out,
            format!(
                "bench-check --smoke: {} baseline fields sane in {baseline_path}",
                flat.len()
            ),
        );
    }
    let current_path = args.opt("current").ok_or(
        "usage: gpp bench-check --current FILE [--baseline FILE] [--tolerance F] (or --smoke)",
    )?;
    let text =
        std::fs::read_to_string(current_path).map_err(|e| format!("{current_path}: {e}"))?;
    let current: serde_json::Value =
        serde_json::from_str(&text).map_err(|e| format!("{current_path}: {e}"))?;
    let tolerance: f64 = args.num("tolerance", 0.25)?;
    let comparison = regress::compare(&baseline, &current, tolerance);
    if comparison.checks.is_empty() {
        return Err(format!(
            "bench-check: no comparable keys between {baseline_path} and {current_path}"
        ));
    }
    let mut t = Table::new(["Key", "Baseline", "Current", "Change", "Status"]);
    for c in &comparison.checks {
        t.row([
            c.key.clone(),
            format!("{:.4}", c.baseline),
            format!("{:.4}", c.current),
            format!("{:+.1}%", c.change * 100.0),
            match (c.regressed, c.direction) {
                (true, _) => "REGRESSED".to_owned(),
                (false, Direction::Informational) => "info".to_owned(),
                (false, _) => "ok".to_owned(),
            },
        ]);
    }
    w(out, &t)?;
    let regressions = comparison.regressions();
    if regressions.is_empty() {
        w(
            out,
            format!(
                "bench-check: {} keys compared at {:.0}% tolerance, no regressions",
                comparison.checks.len(),
                tolerance * 100.0
            ),
        )
    } else {
        Err(format!(
            "bench-check: {} of {} keys regressed beyond {:.0}% tolerance: {}",
            regressions.len(),
            comparison.checks.len(),
            tolerance * 100.0,
            regressions
                .iter()
                .map(|c| c.key.as_str())
                .collect::<Vec<_>>()
                .join(", ")
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_cmd(line: &str) -> Result<String, String> {
        let args = Args::parse(line.split_whitespace().map(str::to_owned));
        let mut buf = Vec::new();
        run(&args, &mut buf)?;
        Ok(String::from_utf8(buf).expect("utf8 output"))
    }

    #[test]
    fn help_lists_commands() {
        let text = run_cmd("help").unwrap();
        for cmd in [
            "chips",
            "study",
            "analyze",
            "microbench",
            "codegen",
            "sensitivity",
            "sweep",
            "profile",
            "bench-check",
        ] {
            assert!(text.contains(cmd), "missing {cmd}");
        }
    }

    #[test]
    fn sweep_smoke_is_byte_identical_batched_and_per_chip() {
        let dir = std::env::temp_dir().join(format!("gpp-cli-sweep-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let batched = dir.join("batched.json");
        let oracle = dir.join("oracle.json");
        let stdout_a = run_cmd(&format!(
            "sweep --smoke --chips 4 --threads 2 --out {}",
            batched.display()
        ))
        .unwrap();
        let stdout_b = run_cmd(&format!(
            "sweep --smoke --chips 4 --threads 2 --per-chip --out {}",
            oracle.display()
        ))
        .unwrap();
        assert!(stdout_a.contains("swept 4 chips"));
        assert_eq!(stdout_a, stdout_b);
        let a = std::fs::read(&batched).unwrap();
        let b = std::fs::read(&oracle).unwrap();
        assert!(!a.is_empty());
        assert_eq!(a, b, "batched and per-chip sweep outputs must match");
        let text = String::from_utf8(a).unwrap();
        assert!(text.contains("log_ratios"));
        assert!(text.contains("top_axes"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sweep_accepts_an_explicit_chips_file() {
        let dir = std::env::temp_dir().join(format!("gpp-cli-sweep-file-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("chips.json");
        std::fs::write(
            &file,
            serde_json::to_string_pretty(&study_chips()).unwrap(),
        )
        .unwrap();
        let text = run_cmd(&format!(
            "sweep --smoke --threads 2 --chips-file {}",
            file.display()
        ))
        .unwrap();
        assert!(text.contains("swept 6 chips"));
        assert!(text.contains("oitergb"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sweep_rejects_invalid_chips_file() {
        let dir = std::env::temp_dir().join(format!("gpp-cli-sweep-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("bad.json");
        let mut bad = study_chips();
        bad[0].alu_cost = -1.0;
        std::fs::write(&file, serde_json::to_string(&bad).unwrap()).unwrap();
        let err = run_cmd(&format!("sweep --smoke --chips-file {}", file.display())).unwrap_err();
        assert!(err.contains("chip 0"), "{err}");
        assert!(err.contains("alu_cost"), "{err}");

        std::fs::write(&file, "[]").unwrap();
        let err = run_cmd(&format!("sweep --smoke --chips-file {}", file.display())).unwrap_err();
        assert!(err.contains("empty"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn portfolio_smoke_curve_is_identical_at_any_thread_count() {
        let a = run_cmd("portfolio --smoke --threads 1").unwrap();
        let b = run_cmd("portfolio --smoke --threads 4").unwrap();
        assert_eq!(a, b);
        assert!(a.contains("portability-cost curve"), "{a}");
        assert!(a.contains("objective geomean"), "{a}");
        assert!(a.contains("exact"), "{a}");
        assert!(a.contains("beam"), "{a}");
        assert!(a.contains("candidates evaluated"), "{a}");
    }

    #[test]
    fn portfolio_worst_objective_and_out_file() {
        let dir = std::env::temp_dir().join(format!("gpp-cli-pf-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("curve.json");
        let text = run_cmd(&format!(
            "portfolio --smoke --objective worst --k 3 --threads 2 --out {}",
            file.display()
        ))
        .unwrap();
        assert!(text.contains("objective worst"), "{text}");
        let curve: gpp_core::PortfolioCurve =
            serde_json::from_str(&std::fs::read_to_string(&file).unwrap()).unwrap();
        assert_eq!(curve.objective, "worst");
        assert_eq!(curve.points.len(), 3);
        for (i, p) in curve.points.iter().enumerate() {
            assert_eq!(p.k, i + 1);
            assert!(p.slowdown >= 1.0);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn portfolio_accepts_a_chips_file_and_prices_identically_per_chip() {
        let dir = std::env::temp_dir().join(format!("gpp-cli-pf-chips-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let chips = dir.join("chips.json");
        std::fs::write(&chips, serde_json::to_string_pretty(&study_chips()).unwrap()).unwrap();
        let (batched, oracle) = (dir.join("batched.json"), dir.join("oracle.json"));
        let a = run_cmd(&format!(
            "portfolio --smoke --k 3 --threads 2 --chips-file {} --out {}",
            chips.display(),
            batched.display()
        ))
        .unwrap();
        let b = run_cmd(&format!(
            "portfolio --smoke --k 3 --threads 2 --per-chip --chips-file {} --out {}",
            chips.display(),
            oracle.display()
        ))
        .unwrap();
        assert!(a.contains("x 6 chips priced from"), "{a}");
        assert_eq!(a.replace("batched.json", ""), b.replace("oracle.json", ""));
        assert_eq!(
            std::fs::read(&batched).unwrap(),
            std::fs::read(&oracle).unwrap(),
            "batched and per-chip portfolio curves must match"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn portfolio_rejects_bad_arguments() {
        assert!(run_cmd("portfolio --smoke --objective median")
            .unwrap_err()
            .contains("unknown objective"));
        assert!(run_cmd("portfolio --smoke --k 0")
            .unwrap_err()
            .contains("--k must be"));
        assert!(run_cmd("portfolio --smoke --k 97")
            .unwrap_err()
            .contains("--k must be"));
        assert!(run_cmd("portfolio --smoke --beam 0")
            .unwrap_err()
            .contains("--beam"));
        assert!(run_cmd("portfolio --smoke --exact-max 0")
            .unwrap_err()
            .contains("--exact-max"));
    }

    #[test]
    fn portfolio_metrics_out_includes_the_portfolio_family() {
        let _guard = METRICS_TESTS.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let dir = std::env::temp_dir().join(format!("gpp-cli-pf-metrics-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("metrics.json");
        let text = run_cmd(&format!(
            "portfolio --smoke --threads 2 --metrics-out {}",
            path.display()
        ))
        .unwrap();
        assert!(text.contains("metrics:"), "{text}");
        let snap =
            gpp_obs::MetricsSnapshot::from_json(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert!(*snap.counters.get("portfolio.candidates_evaluated").unwrap() >= 1);
        assert!(snap.counters.contains_key("portfolio.prefixes_pruned"));
        assert!(snap.counters.contains_key("portfolio.beam_rounds"));
        let hist = snap.histograms.get("portfolio.matrix_build_ns").unwrap();
        assert!(hist.count >= 1, "histogram count {}", hist.count);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sweep_emit_chips_round_trips() {
        let dir = std::env::temp_dir().join(format!("gpp-cli-sweep-emit-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("cloud.json");
        run_cmd(&format!(
            "sweep --smoke --chips 3 --threads 2 --emit-chips {}",
            file.display()
        ))
        .unwrap();
        let text = std::fs::read_to_string(&file).unwrap();
        let cloud: Vec<ChipProfile> = serde_json::from_str(&text).unwrap();
        assert_eq!(cloud.len(), 3);
        assert!(cloud.iter().all(|c| c.validate().is_ok()));
        // The emitted cloud feeds straight back through --chips-file.
        let again = run_cmd(&format!(
            "sweep --smoke --threads 2 --chips-file {}",
            file.display()
        ))
        .unwrap();
        assert!(again.contains("swept 3 chips"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn chips_prints_all_six() {
        let text = run_cmd("chips").unwrap();
        for chip in ["M4000", "GTX1080", "HD5500", "IRIS", "R9", "MALI"] {
            assert!(text.contains(chip));
        }
    }

    #[test]
    fn microbench_prints_probes() {
        let text = run_cmd("microbench").unwrap();
        assert!(text.contains("sg-cmb"));
        assert!(text.contains("m-divg"));
    }

    #[test]
    fn unknown_command_is_an_error() {
        let err = run_cmd("frobnicate").unwrap_err();
        assert!(err.contains("frobnicate"));
    }

    #[test]
    fn codegen_compiles_named_program() {
        let text = run_cmd("codegen bfs_wl --opts sg,fg8").unwrap();
        assert!(text.contains("__kernel void bfs_wl_expand"));
        assert!(text.contains("[np-fg8]"));
    }

    #[test]
    fn codegen_rejects_unknown_program_and_bad_opts() {
        assert!(run_cmd("codegen nonesuch")
            .unwrap_err()
            .contains("nonesuch"));
        assert!(run_cmd("codegen bfs_wl --opts warp9")
            .unwrap_err()
            .contains("warp9"));
    }

    #[test]
    fn classify_reads_edge_lists() {
        let dir = std::env::temp_dir().join(format!("gpp-cli-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.el");
        let g = gpp_graph::generators::road_grid(12, 12, 1).unwrap();
        let mut buf = Vec::new();
        graph_io::write_edge_list(&g, &mut buf).unwrap();
        std::fs::write(&path, buf).unwrap();
        let text = run_cmd(&format!("classify {}", path.display())).unwrap();
        assert!(text.contains("class road"), "{text}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn classify_requires_a_path() {
        assert!(run_cmd("classify").unwrap_err().contains("usage"));
    }

    #[test]
    fn compile_and_run_dsl_from_file() {
        let dir = std::env::temp_dir().join(format!("gpp-cli-irgl-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("hops.irgl");
        let src = std::fs::read_to_string(
            std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples/data/hops.irgl"),
        )
        .unwrap();
        std::fs::write(&path, src).unwrap();
        let text = run_cmd(&format!("compile {} --opts coop-cv", path.display())).unwrap();
        assert!(text.contains("sub_group_reduce_add"));
        let text = run_cmd(&format!(
            "run-dsl {} --input road --chip MALI --opts oitergb",
            path.display()
        ))
        .unwrap();
        assert!(text.contains("hops on road"), "{text}");
        assert!(text.contains("1 launches"), "{text}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn run_dsl_rejects_unknown_chip_and_input() {
        let dir = std::env::temp_dir().join(format!("gpp-cli-irgl2-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("p.irgl");
        std::fs::write(&path, "program p { field x = const(0); kernel k all_nodes { } driver fixed(k) iters 1; output x; }").unwrap();
        assert!(run_cmd(&format!("run-dsl {} --chip RTX", path.display()))
            .unwrap_err()
            .contains("RTX"));
        assert!(
            run_cmd(&format!("run-dsl {} --input lattice", path.display()))
                .unwrap_err()
                .contains("lattice")
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compile_reports_parse_errors_with_position() {
        let dir = std::env::temp_dir().join(format!("gpp-cli-irgl3-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.irgl");
        std::fs::write(&path, "program p {\n  field x = wat;\n}").unwrap();
        let err = run_cmd(&format!("compile {}", path.display())).unwrap_err();
        assert!(err.contains("2:"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn study_command_writes_a_dataset() {
        let dir = std::env::temp_dir().join(format!("gpp-cli-study-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ds.json");
        let text = run_cmd(&format!("study --scale tiny --out {}", path.display())).unwrap();
        assert!(text.contains("306 cells"));
        assert!(path.exists());
        // Downstream commands can consume it.
        let text = run_cmd(&format!("extremes --data {}", path.display())).unwrap();
        assert!(text.contains("MALI"));
        let text = run_cmd(&format!("export-csv --data {}", path.display())).unwrap();
        assert!(text.contains("app,input,chip,config,median_ns"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn run_dsl_tiers_match_each_other() {
        let dir = std::env::temp_dir().join(format!("gpp-cli-irgl4-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("hops.irgl");
        let src = std::fs::read_to_string(
            std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples/data/hops.irgl"),
        )
        .unwrap();
        std::fs::write(&path, src).unwrap();
        let default = run_cmd(&format!("run-dsl {} --input road", path.display())).unwrap();
        for tier in ["ast", "bytecode", "native"] {
            let tiered =
                run_cmd(&format!("run-dsl {} --input road --tier {tier}", path.display())).unwrap();
            assert_eq!(default, tiered, "--tier {tier} must not change results or timings");
        }
        // Legacy spelling of --tier ast.
        let ast = run_cmd(&format!("run-dsl {} --input road --ast", path.display())).unwrap();
        assert_eq!(default, ast, "--ast must not change results or timings");
        // Unknown tiers are rejected, not silently defaulted.
        assert!(run_cmd(&format!("run-dsl {} --tier jit", path.display()))
            .unwrap_err()
            .contains("bad --tier"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn study_dsl_flag_extends_the_grid() {
        let dir = std::env::temp_dir().join(format!("gpp-cli-dsl-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ds.json");
        let text =
            run_cmd(&format!("study --scale tiny --dsl --out {}", path.display())).unwrap();
        assert!(text.contains("432 cells"), "{text}"); // 24 apps x 3 x 6
        let ds = Dataset::load_json(&path).unwrap();
        assert_eq!(ds.apps.len(), 24);
        assert!(ds.apps.iter().any(|a| a == "dsl-mis-luby"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn analysis_commands_accept_threads_and_match_serial_output() {
        let dir = std::env::temp_dir().join(format!("gpp-cli-threads-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let ds_path = dir.join("ds.json");
        run_cmd(&format!("study --scale tiny --out {}", ds_path.display())).unwrap();
        for cmd in [
            "analyze",
            "chip-function",
            "predict --probes 4",
            "sensitivity --trials 1",
        ] {
            let serial =
                run_cmd(&format!("{cmd} --data {} --threads 1", ds_path.display())).unwrap();
            let par = run_cmd(&format!("{cmd} --data {} --threads 4", ds_path.display())).unwrap();
            assert_eq!(serial, par, "{cmd} output must not depend on --threads");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn export_chips_round_trips_through_study() {
        let dir = std::env::temp_dir().join(format!("gpp-cli-chips-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let chips_path = dir.join("chips.json");
        let text = run_cmd(&format!("export-chips {}", chips_path.display())).unwrap();
        assert!(text.contains("6 chip models"));
        // Trim to two chips and run a tiny study on them.
        let chips: Vec<gpp_sim::chip::ChipProfile> =
            serde_json::from_str(&std::fs::read_to_string(&chips_path).unwrap()).unwrap();
        std::fs::write(&chips_path, serde_json::to_string(&chips[..2]).unwrap()).unwrap();
        let ds_path = dir.join("ds.json");
        let text = run_cmd(&format!(
            "study --scale tiny --chips {} --out {}",
            chips_path.display(),
            ds_path.display()
        ))
        .unwrap();
        assert!(text.contains("102 cells"), "{text}"); // 17 apps x 3 inputs x 2 chips
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn study_trace_cache_warm_run_is_identical_and_skips_collection() {
        let dir = std::env::temp_dir().join(format!("gpp-cli-cache-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let cache_dir = dir.join("trace-cache");
        let (cold_path, warm_path, plain_path) =
            (dir.join("cold.json"), dir.join("warm.json"), dir.join("plain.json"));
        run_cmd(&format!("study --scale tiny --out {}", plain_path.display())).unwrap();
        let trace_out = dir.join("warm-trace.jsonl");
        run_cmd(&format!(
            "study --scale tiny --trace-cache {} --out {}",
            cache_dir.display(),
            cold_path.display()
        ))
        .unwrap();
        // The cache directory now holds one entry per (app, input) pair.
        assert_eq!(std::fs::read_dir(&cache_dir).unwrap().count(), 17 * 3);
        let text = run_cmd(&format!(
            "study --scale tiny --trace-cache {} --trace-out {} --out {}",
            cache_dir.display(),
            trace_out.display(),
            warm_path.display()
        ))
        .unwrap();
        assert!(text.contains("trace cache: 51 hits, 0 misses"), "{text}");
        assert!(text.contains("0 traces compiled"), "{text}");
        // Cacheless, cold, and warm datasets are byte-identical.
        let plain = std::fs::read(&plain_path).unwrap();
        assert_eq!(plain, std::fs::read(&cold_path).unwrap());
        assert_eq!(plain, std::fs::read(&warm_path).unwrap());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn study_rejects_empty_chip_files() {
        let dir = std::env::temp_dir().join(format!("gpp-cli-chips2-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let chips_path = dir.join("none.json");
        std::fs::write(&chips_path, "[]").unwrap();
        let err = run_cmd(&format!(
            "study --scale tiny --chips {}",
            chips_path.display()
        ))
        .unwrap_err();
        assert!(err.contains("empty"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bad_scale_is_an_error() {
        assert!(run_cmd("study --scale gigantic")
            .unwrap_err()
            .contains("gigantic"));
    }

    #[test]
    fn explain_prints_attribution_for_all_chips() {
        let text = run_cmd("explain --scale tiny").unwrap();
        for chip in ["M4000", "GTX1080", "HD5500", "IRIS", "R9", "MALI"] {
            assert!(text.contains(chip), "missing {chip}:\n{text}");
        }
        for label in [
            "launch",
            "copy",
            "compute",
            "divergence",
            "atomics",
            "barrier",
            "occupancy tail",
            "worklist",
            "total",
        ] {
            assert!(text.contains(label), "missing {label}:\n{text}");
        }
        // Per-chip memory-model notes ride along.
        assert!(text.contains("best-effort OpenCL 1.x fences"), "{text}");
    }

    #[test]
    fn explain_accepts_chip_and_opts_filters() {
        let text = run_cmd("explain --scale tiny --chip MALI --opts oitergb").unwrap();
        assert!(text.contains("MALI"), "{text}");
        assert!(!text.contains("GTX1080"), "{text}");
        assert!(text.contains("oitergb"), "{text}");
    }

    #[test]
    fn explain_rejects_unknown_names() {
        assert!(run_cmd("explain --scale tiny --app nonesuch")
            .unwrap_err()
            .contains("nonesuch"));
        assert!(run_cmd("explain --scale tiny --chip RTX")
            .unwrap_err()
            .contains("RTX"));
        assert!(run_cmd("explain --scale tiny --input lattice")
            .unwrap_err()
            .contains("lattice"));
    }

    /// Serialises tests that enable the process-wide metrics registry,
    /// so they don't reset or disable it under each other. Other tests
    /// may still record counters while the registry is enabled, which
    /// is why the assertions below are monotone (`>=`), never exact.
    static METRICS_TESTS: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn study_reports_cache_hits_without_a_trace_sink() {
        let dir = std::env::temp_dir().join(format!("gpp-cli-cache2-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let cache_dir = dir.join("trace-cache");
        let (cold_path, warm_path) = (dir.join("cold.json"), dir.join("warm.json"));
        let cold = run_cmd(&format!(
            "study --scale tiny --trace-cache {} --out {}",
            cache_dir.display(),
            cold_path.display()
        ))
        .unwrap();
        // A cold run misses every (app, input) pair; the summary lines
        // appear even though no --trace-out sink is configured, but the
        // full phase table and slowest-cell listing stay gated on it.
        assert!(cold.contains("trace cache: 0 hits, 51 misses"), "{cold}");
        assert!(cold.contains("51 traces compiled"), "{cold}");
        assert!(!cold.contains("slowest cells"), "{cold}");
        assert!(!cold.contains("Phase"), "{cold}");
        let warm = run_cmd(&format!(
            "study --scale tiny --trace-cache {} --out {}",
            cache_dir.display(),
            warm_path.display()
        ))
        .unwrap();
        assert!(warm.contains("trace cache: 51 hits, 0 misses"), "{warm}");
        assert!(warm.contains("0 traces compiled"), "{warm}");
        assert_eq!(
            std::fs::read(&cold_path).unwrap(),
            std::fs::read(&warm_path).unwrap()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn study_metrics_out_writes_a_parseable_snapshot() {
        let _guard = METRICS_TESTS.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let dir = std::env::temp_dir().join(format!("gpp-cli-metrics-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let (metrics_path, ds_path, plain_path) = (
            dir.join("metrics.json"),
            dir.join("ds.json"),
            dir.join("plain.json"),
        );
        let text = run_cmd(&format!(
            "study --scale tiny --threads 4 --metrics-out {} --out {}",
            metrics_path.display(),
            ds_path.display()
        ))
        .unwrap();
        assert!(text.contains("metrics:"), "{text}");
        let snap = gpp_obs::MetricsSnapshot::from_json(
            &std::fs::read_to_string(&metrics_path).unwrap(),
        )
        .unwrap();
        assert!(*snap.counters.get("study.traces_compiled").unwrap() >= 51);
        assert!(*snap.counters.get("study.cells_priced").unwrap() >= 306);
        assert!(snap.counters.contains_key("replay.batched_traversals"));
        assert!(*snap.gauges.get("study.wall_seconds").unwrap() > 0.0);
        assert!(snap.gauges.contains_key("study.phase_seconds.price-cells"));
        let hist = snap.histograms.get("study.cell_price_ns").unwrap();
        assert!(hist.count >= 306, "histogram count {}", hist.count);
        assert!(hist.p50 <= hist.p99);
        // The instrumented dataset is byte-identical to a plain run.
        run_cmd(&format!(
            "study --scale tiny --threads 4 --out {}",
            plain_path.display()
        ))
        .unwrap();
        assert_eq!(
            std::fs::read(&ds_path).unwrap(),
            std::fs::read(&plain_path).unwrap()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn profile_study_smoke_prints_the_phase_tree() {
        let _guard = METRICS_TESTS.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let dir = std::env::temp_dir().join(format!("gpp-cli-profile-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let (json_path, prom_path) = (dir.join("metrics.json"), dir.join("metrics.prom"));
        let text = run_cmd(&format!(
            "profile study --smoke --threads 2 --metrics-out {} --prometheus-out {}",
            json_path.display(),
            prom_path.display()
        ))
        .unwrap();
        for needle in [
            "study",
            "generate-inputs",
            "collect-traces",
            "price-cells",
            "finalize",
            "phase coverage of `study`",
            "throughput:",
            "cells/s",
        ] {
            assert!(text.contains(needle), "missing {needle}:\n{text}");
        }
        let snap = gpp_obs::MetricsSnapshot::from_json(
            &std::fs::read_to_string(&json_path).unwrap(),
        )
        .unwrap();
        assert!(*snap.counters.get("study.cells_priced").unwrap() >= 306);
        let prom = std::fs::read_to_string(&prom_path).unwrap();
        assert!(prom.contains("# TYPE gpp_study_cells_priced counter"), "{prom}");
        assert!(prom.contains("quantile=\"0.99\""), "{prom}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn profile_sweep_smoke_prints_batch_phases() {
        let _guard = METRICS_TESTS.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let text = run_cmd("profile sweep --smoke --chips 4 --threads 2").unwrap();
        for needle in ["sweep", "price-batches", "collect-traces", "chip-configs"] {
            assert!(text.contains(needle), "missing {needle}:\n{text}");
        }
    }

    #[test]
    fn profile_rejects_unknown_targets() {
        let err = run_cmd("profile frobnicate").unwrap_err();
        assert!(err.contains("frobnicate"), "{err}");
    }

    #[test]
    fn bench_check_smoke_accepts_the_checked_in_baseline() {
        let baseline =
            std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_study.json");
        let text = run_cmd(&format!(
            "bench-check --smoke --baseline {}",
            baseline.display()
        ))
        .unwrap();
        assert!(text.contains("baseline fields sane"), "{text}");
    }

    #[test]
    fn bench_check_gates_on_an_injected_regression() {
        let dir = std::env::temp_dir().join(format!("gpp-cli-gate-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let (baseline, current) = (dir.join("baseline.json"), dir.join("current.json"));
        // A metrics snapshot's study.wall_seconds aliases the bench
        // baseline's parallel_seconds; an absurdly fast baseline makes
        // any real run a regression.
        std::fs::write(&baseline, r#"{"parallel_seconds": 1e-12}"#).unwrap();
        std::fs::write(&current, r#"{"gauges": {"study.wall_seconds": 0.5}}"#).unwrap();
        let err = run_cmd(&format!(
            "bench-check --baseline {} --current {}",
            baseline.display(),
            current.display()
        ))
        .unwrap_err();
        assert!(err.contains("regressed"), "{err}");
        assert!(err.contains("parallel_seconds"), "{err}");
        // A faster-than-baseline run passes.
        std::fs::write(&baseline, r#"{"parallel_seconds": 10.0}"#).unwrap();
        let text = run_cmd(&format!(
            "bench-check --baseline {} --current {}",
            baseline.display(),
            current.display()
        ))
        .unwrap();
        assert!(text.contains("no regressions"), "{text}");
        // Disjoint key sets are a configuration error, not a pass.
        std::fs::write(&current, r#"{"unrelated": 1.0}"#).unwrap();
        let err = run_cmd(&format!(
            "bench-check --baseline {} --current {}",
            baseline.display(),
            current.display()
        ))
        .unwrap_err();
        assert!(err.contains("no comparable keys"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn footer_width_tracks_the_longest_name() {
        assert_eq!(footer_width(["R9", "MALI"]), 8);
        assert_eq!(footer_width(["a-very-long-chip-name"]), 21);
        assert_eq!(footer_width(std::iter::empty::<&str>()), 8);
    }

    #[test]
    fn study_trace_out_writes_parseable_jsonl_and_summary() {
        let dir = std::env::temp_dir().join(format!("gpp-cli-trace-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let trace_path = dir.join("trace.jsonl");
        let ds_path = dir.join("ds.json");
        let text = run_cmd(&format!(
            "study --scale tiny --threads 4 --trace-out {} --out {}",
            trace_path.display(),
            ds_path.display()
        ))
        .unwrap();
        assert!(text.contains("306 cells"), "{text}");
        assert!(text.contains("cells priced"), "{text}");
        assert!(text.contains("collect-traces"), "{text}");
        assert!(text.contains("price-cells"), "{text}");
        assert!(text.contains("slowest cells:"), "{text}");
        let content = std::fs::read_to_string(&trace_path).unwrap();
        let events: Vec<gpp_obs::TraceEvent> = content
            .lines()
            .map(|l| serde_json::from_str(l).expect("each line is one TraceEvent"))
            .collect();
        assert!(!events.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }
}

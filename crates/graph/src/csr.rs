//! Immutable compressed-sparse-row graph representation.

use serde::{Deserialize, Serialize};

use crate::GraphError;

/// Node identifier. The study graphs are well below `u32::MAX` nodes and the
/// narrow id keeps CSR arrays compact, which matters for the simulator's
/// memory-traffic accounting.
pub type NodeId = u32;

/// An immutable graph in compressed-sparse-row form.
///
/// Construction goes through [`crate::GraphBuilder`] (or the generators),
/// which validate all invariants:
///
/// - `offsets.len() == num_nodes + 1`, monotonically non-decreasing,
///   `offsets[0] == 0`, `offsets[n] == targets.len()`;
/// - every target id is `< num_nodes`;
/// - if weighted, `weights.len() == targets.len()`.
///
/// For undirected graphs every edge is stored in both directions, so
/// [`Graph::num_edges`] counts *directed arcs*.
///
/// # Example
///
/// ```
/// use gpp_graph::GraphBuilder;
///
/// let g = GraphBuilder::new(3).undirected().edge(0, 1).edge(1, 2).build()?;
/// assert_eq!(g.num_nodes(), 3);
/// assert_eq!(g.num_edges(), 4); // two undirected edges = four arcs
/// assert_eq!(g.neighbors(1), &[0, 2]);
/// # Ok::<(), gpp_graph::GraphError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Graph {
    offsets: Vec<u32>,
    targets: Vec<NodeId>,
    weights: Vec<u32>,
    directed: bool,
}

impl Graph {
    /// Builds a graph directly from CSR arrays, validating all invariants.
    ///
    /// Prefer [`crate::GraphBuilder`] unless the arrays already exist.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] if the arrays are inconsistent: non-monotonic
    /// offsets, wrong offset array length, out-of-bounds targets, or a
    /// weight array whose length does not match the target array.
    pub fn from_csr(
        offsets: Vec<u32>,
        targets: Vec<NodeId>,
        weights: Vec<u32>,
        directed: bool,
    ) -> Result<Self, GraphError> {
        if offsets.is_empty() {
            return Err(GraphError::EmptyGraph);
        }
        let n = offsets.len() - 1;
        if offsets[0] != 0 {
            return Err(GraphError::InvalidParameter {
                name: "offsets",
                reason: "offsets[0] must be 0".into(),
            });
        }
        if offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err(GraphError::InvalidParameter {
                name: "offsets",
                reason: "offsets must be non-decreasing".into(),
            });
        }
        if *offsets.last().expect("non-empty") as usize != targets.len() {
            return Err(GraphError::InvalidParameter {
                name: "offsets",
                reason: format!(
                    "last offset {} does not match target count {}",
                    offsets.last().expect("non-empty"),
                    targets.len()
                ),
            });
        }
        if let Some(&bad) = targets.iter().find(|&&t| t as usize >= n) {
            return Err(GraphError::NodeOutOfBounds {
                node: bad as u64,
                num_nodes: n as u64,
            });
        }
        if !weights.is_empty() && weights.len() != targets.len() {
            return Err(GraphError::InvalidParameter {
                name: "weights",
                reason: format!(
                    "weight count {} does not match target count {}",
                    weights.len(),
                    targets.len()
                ),
            });
        }
        Ok(Graph {
            offsets,
            targets,
            weights,
            directed,
        })
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of directed arcs stored (undirected edges count twice).
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }

    /// Whether the graph was built as directed.
    pub fn is_directed(&self) -> bool {
        self.directed
    }

    /// Whether per-edge weights are attached.
    pub fn is_weighted(&self) -> bool {
        !self.weights.is_empty()
    }

    /// Out-degree of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    pub fn degree(&self, node: NodeId) -> usize {
        let (lo, hi) = self.range(node);
        hi - lo
    }

    /// The neighbors of `node` as a slice (sorted ascending).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    pub fn neighbors(&self, node: NodeId) -> &[NodeId] {
        let (lo, hi) = self.range(node);
        &self.targets[lo..hi]
    }

    /// The weights of edges out of `node`, parallel to [`Graph::neighbors`].
    ///
    /// Returns an empty slice for unweighted graphs.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    pub fn edge_weights(&self, node: NodeId) -> &[u32] {
        if self.weights.is_empty() {
            return &[];
        }
        let (lo, hi) = self.range(node);
        &self.weights[lo..hi]
    }

    /// Iterates over `(target, weight)` pairs out of `node`; the weight is 1
    /// for unweighted graphs.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    pub fn out_edges(&self, node: NodeId) -> NeighborIter<'_> {
        let (lo, hi) = self.range(node);
        NeighborIter {
            graph: self,
            pos: lo,
            end: hi,
        }
    }

    /// Iterates over all node ids `0..num_nodes`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        0..self.num_nodes() as NodeId
    }

    /// The maximum out-degree over all nodes (0 for edgeless graphs).
    pub fn max_degree(&self) -> usize {
        self.offsets
            .windows(2)
            .map(|w| (w[1] - w[0]) as usize)
            .max()
            .unwrap_or(0)
    }

    /// Mean out-degree.
    pub fn mean_degree(&self) -> f64 {
        if self.num_nodes() == 0 {
            return 0.0;
        }
        self.num_edges() as f64 / self.num_nodes() as f64
    }

    /// Raw CSR offset array (length `num_nodes + 1`), for cost models that
    /// aggregate over the whole degree sequence without per-node calls.
    pub fn offsets(&self) -> &[u32] {
        &self.offsets
    }

    /// Raw CSR target array.
    pub fn targets(&self) -> &[NodeId] {
        &self.targets
    }

    /// Returns `true` if the arc `u -> v` exists (binary search).
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of bounds.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Weight of arc `u -> v`, if it exists (1 for unweighted graphs).
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of bounds.
    pub fn edge_weight(&self, u: NodeId, v: NodeId) -> Option<u32> {
        let idx = self.neighbors(u).binary_search(&v).ok()?;
        if self.weights.is_empty() {
            Some(1)
        } else {
            let (lo, _) = self.range(u);
            Some(self.weights[lo + idx])
        }
    }

    fn range(&self, node: NodeId) -> (usize, usize) {
        let n = self.num_nodes();
        assert!(
            (node as usize) < n,
            "node {node} out of bounds for {n} nodes"
        );
        (
            self.offsets[node as usize] as usize,
            self.offsets[node as usize + 1] as usize,
        )
    }
}

/// Iterator over `(target, weight)` pairs, returned by [`Graph::out_edges`].
#[derive(Debug, Clone)]
pub struct NeighborIter<'a> {
    graph: &'a Graph,
    pos: usize,
    end: usize,
}

impl Iterator for NeighborIter<'_> {
    type Item = (NodeId, u32);

    fn next(&mut self) -> Option<Self::Item> {
        if self.pos >= self.end {
            return None;
        }
        let t = self.graph.targets[self.pos];
        let w = if self.graph.weights.is_empty() {
            1
        } else {
            self.graph.weights[self.pos]
        };
        self.pos += 1;
        Some((t, w))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.end - self.pos;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for NeighborIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn triangle() -> Graph {
        GraphBuilder::new(3)
            .undirected()
            .edge(0, 1)
            .edge(1, 2)
            .edge(0, 2)
            .build()
            .expect("valid")
    }

    #[test]
    fn from_csr_validates_offsets_start() {
        let err = Graph::from_csr(vec![1, 1], vec![], vec![], true).unwrap_err();
        assert!(matches!(
            err,
            GraphError::InvalidParameter {
                name: "offsets",
                ..
            }
        ));
    }

    #[test]
    fn from_csr_validates_monotonicity() {
        let err = Graph::from_csr(vec![0, 2, 1], vec![0, 1], vec![], true).unwrap_err();
        assert!(matches!(
            err,
            GraphError::InvalidParameter {
                name: "offsets",
                ..
            }
        ));
    }

    #[test]
    fn from_csr_validates_target_bounds() {
        let err = Graph::from_csr(vec![0, 1], vec![5], vec![], true).unwrap_err();
        assert_eq!(
            err,
            GraphError::NodeOutOfBounds {
                node: 5,
                num_nodes: 1
            }
        );
    }

    #[test]
    fn from_csr_validates_weight_length() {
        let err = Graph::from_csr(vec![0, 1, 1], vec![1], vec![3, 4], true).unwrap_err();
        assert!(matches!(
            err,
            GraphError::InvalidParameter {
                name: "weights",
                ..
            }
        ));
    }

    #[test]
    fn from_csr_rejects_empty_offsets() {
        assert_eq!(
            Graph::from_csr(vec![], vec![], vec![], true).unwrap_err(),
            GraphError::EmptyGraph
        );
    }

    #[test]
    fn triangle_shape() {
        let g = triangle();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 6);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.max_degree(), 2);
        assert!((g.mean_degree() - 2.0).abs() < 1e-12);
        assert!(g.has_edge(2, 0));
        assert!(!g.has_edge(0, 0));
    }

    #[test]
    fn out_edges_default_weight_is_one() {
        let g = triangle();
        assert_eq!(g.out_edges(0).collect::<Vec<_>>(), vec![(1, 1), (2, 1)]);
        assert_eq!(g.out_edges(0).len(), 2);
    }

    #[test]
    fn weighted_edges_round_trip() {
        let g = GraphBuilder::new(2)
            .weighted_edge(0, 1, 9)
            .build()
            .expect("valid");
        assert!(g.is_weighted());
        assert_eq!(g.edge_weight(0, 1), Some(9));
        assert_eq!(g.edge_weight(1, 0), None);
        assert_eq!(g.edge_weights(0), &[9]);
    }

    #[test]
    fn edgeless_node_has_empty_slices() {
        let g = GraphBuilder::new(2).build().expect("valid");
        assert_eq!(g.neighbors(1), &[] as &[NodeId]);
        assert_eq!(g.max_degree(), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn neighbors_panics_out_of_bounds() {
        triangle().neighbors(3);
    }

    #[test]
    fn serde_round_trip() {
        let g = triangle();
        let json = serde_json::to_string(&g).expect("serialise");
        let back: Graph = serde_json::from_str(&json).expect("deserialise");
        assert_eq!(g, back);
    }
}

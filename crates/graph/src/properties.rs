//! Structural graph analyses used to characterise study inputs and to
//! cross-check application results.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use crate::{Graph, NodeId};

/// Level (hop distance) of every node from a source; unreachable nodes are
/// `u32::MAX`. Reference implementation used to validate the GPU-simulated
/// BFS applications.
pub const UNREACHABLE: u32 = u32::MAX;

/// Sequential reference BFS. Returns per-node hop distances from `source`
/// ([`UNREACHABLE`] where no path exists).
///
/// # Panics
///
/// Panics if `source` is out of bounds.
pub fn bfs_levels(graph: &Graph, source: NodeId) -> Vec<u32> {
    let mut levels = vec![UNREACHABLE; graph.num_nodes()];
    levels[source as usize] = 0;
    let mut queue = VecDeque::from([source]);
    while let Some(u) = queue.pop_front() {
        let next = levels[u as usize] + 1;
        for &v in graph.neighbors(u) {
            if levels[v as usize] == UNREACHABLE {
                levels[v as usize] = next;
                queue.push_back(v);
            }
        }
    }
    levels
}

/// Sequential reference Dijkstra. Returns per-node weighted distances from
/// `source` (`u64::MAX` where no path exists). Unweighted graphs use weight
/// 1 per edge.
///
/// # Panics
///
/// Panics if `source` is out of bounds.
pub fn dijkstra(graph: &Graph, source: NodeId) -> Vec<u64> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let mut dist = vec![u64::MAX; graph.num_nodes()];
    dist[source as usize] = 0;
    let mut heap = BinaryHeap::from([Reverse((0u64, source))]);
    while let Some(Reverse((d, u))) = heap.pop() {
        if d > dist[u as usize] {
            continue;
        }
        for (v, w) in graph.out_edges(u) {
            let nd = d + w as u64;
            if nd < dist[v as usize] {
                dist[v as usize] = nd;
                heap.push(Reverse((nd, v)));
            }
        }
    }
    dist
}

/// Result of a connected-components analysis.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Components {
    /// For each node, the smallest node id in its component.
    pub labels: Vec<NodeId>,
    /// Number of distinct components.
    pub component_count: usize,
}

/// Computes connected components (treating arcs as undirected) with a
/// union-find; the label of each node is the minimum node id in its
/// component. Reference implementation for the CC applications.
pub fn connected_components(graph: &Graph) -> Components {
    let mut uf = UnionFind::new(graph.num_nodes());
    for u in graph.nodes() {
        for &v in graph.neighbors(u) {
            uf.union(u as usize, v as usize);
        }
    }
    // Map each root to the minimum id in its set.
    let n = graph.num_nodes();
    let mut min_of_root = vec![NodeId::MAX; n];
    for v in 0..n {
        let r = uf.find(v);
        min_of_root[r] = min_of_root[r].min(v as NodeId);
    }
    let labels: Vec<NodeId> = (0..n).map(|v| min_of_root[uf.find(v)]).collect();
    let mut roots: Vec<NodeId> = labels.clone();
    roots.sort_unstable();
    roots.dedup();
    Components {
        labels,
        component_count: roots.len(),
    }
}

/// A classic union-find (disjoint-set) structure with path halving and
/// union by size. Exposed because several reference algorithms (CC, MST)
/// and tests need it.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    size: Vec<u32>,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            size: vec![1; n],
        }
    }

    /// Returns the representative of `x`'s set.
    ///
    /// # Panics
    ///
    /// Panics if `x >= n`.
    pub fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    /// Merges the sets containing `a` and `b`; returns `true` if they were
    /// previously distinct.
    ///
    /// # Panics
    ///
    /// Panics if `a` or `b` is out of range.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra;
        self.size[ra] += self.size[rb];
        true
    }

    /// Returns `true` if `a` and `b` are in the same set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }
}

/// Reference minimum-spanning-forest weight via Kruskal's algorithm.
/// Counts each undirected edge once (smaller endpoint first).
pub fn mst_weight(graph: &Graph) -> u64 {
    let mut edges: Vec<(u32, NodeId, NodeId)> = Vec::new();
    for u in graph.nodes() {
        for (v, w) in graph.out_edges(u) {
            if u < v || graph.is_directed() {
                edges.push((w, u, v));
            }
        }
    }
    edges.sort_unstable();
    let mut uf = UnionFind::new(graph.num_nodes());
    let mut total = 0u64;
    for (w, u, v) in edges {
        if uf.union(u as usize, v as usize) {
            total += w as u64;
        }
    }
    total
}

/// Reference triangle count: number of unordered node triples that are
/// mutually adjacent. Assumes an undirected (mirrored) graph.
pub fn triangle_count(graph: &Graph) -> u64 {
    let mut count = 0u64;
    for u in graph.nodes() {
        for &v in graph.neighbors(u) {
            if v <= u {
                continue;
            }
            // Intersect neighbor lists of u and v above v.
            let (mut a, mut b) = (graph.neighbors(u), graph.neighbors(v));
            while let (Some(&x), Some(&y)) = (a.first(), b.first()) {
                match x.cmp(&y) {
                    std::cmp::Ordering::Less => a = &a[1..],
                    std::cmp::Ordering::Greater => b = &b[1..],
                    std::cmp::Ordering::Equal => {
                        if x > v {
                            count += 1;
                        }
                        a = &a[1..];
                        b = &b[1..];
                    }
                }
            }
        }
    }
    count
}

/// Average local clustering coefficient: for each node with degree ≥ 2,
/// the fraction of its neighbour pairs that are themselves adjacent,
/// averaged over all such nodes (0 if none qualify). High for social
/// graphs, near zero for roads and sparse random graphs.
pub fn clustering_coefficient(graph: &Graph) -> f64 {
    let mut sum = 0.0f64;
    let mut counted = 0usize;
    for u in graph.nodes() {
        let nbrs = graph.neighbors(u);
        let d = nbrs.len();
        if d < 2 {
            continue;
        }
        let mut closed = 0usize;
        for (i, &v) in nbrs.iter().enumerate() {
            for &w in &nbrs[i + 1..] {
                if graph.has_edge(v, w) {
                    closed += 1;
                }
            }
        }
        sum += closed as f64 / (d * (d - 1) / 2) as f64;
        counted += 1;
    }
    if counted == 0 {
        0.0
    } else {
        sum / counted as f64
    }
}

/// Histogram of out-degrees in power-of-two buckets: `histogram[i]`
/// counts nodes with degree in `[2^i, 2^(i+1))`; bucket 0 additionally
/// holds degree-0 nodes. Useful for eyeballing the skew of an input.
pub fn degree_histogram(graph: &Graph) -> Vec<usize> {
    let mut histogram = Vec::new();
    for u in graph.nodes() {
        let d = graph.degree(u);
        let bucket = if d <= 1 {
            0
        } else {
            (usize::BITS - 1 - d.leading_zeros()) as usize
        };
        if histogram.len() <= bucket {
            histogram.resize(bucket + 1, 0);
        }
        histogram[bucket] += 1;
    }
    histogram
}

/// Degree assortativity: the Pearson correlation of the degrees at the
/// two ends of each edge (in `[-1, 1]`; 0 for degree-uncorrelated wiring,
/// negative when hubs attach to leaves). Returns 0 for graphs without
/// degree variance.
pub fn degree_assortativity(graph: &Graph) -> f64 {
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for u in graph.nodes() {
        for &v in graph.neighbors(u) {
            xs.push(graph.degree(u) as f64);
            ys.push(graph.degree(v) as f64);
        }
    }
    if xs.is_empty() {
        return 0.0;
    }
    let n = xs.len() as f64;
    let (mx, my) = (xs.iter().sum::<f64>() / n, ys.iter().sum::<f64>() / n);
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(&ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    if vx == 0.0 || vy == 0.0 {
        return 0.0;
    }
    cov / (vx.sqrt() * vy.sqrt())
}

/// Estimates the graph diameter by a handful of BFS sweeps: start from node
/// 0, repeatedly jump to the farthest reachable node. A lower bound on the
/// true diameter, tight enough to separate road from social inputs.
pub fn estimate_diameter(graph: &Graph) -> usize {
    let mut source: NodeId = 0;
    let mut best = 0usize;
    for _ in 0..4 {
        let levels = bfs_levels(graph, source);
        let (far, ecc) = levels
            .iter()
            .enumerate()
            .filter(|(_, &l)| l != UNREACHABLE)
            .max_by_key(|(_, &l)| l)
            .map(|(i, &l)| (i as NodeId, l as usize))
            .unwrap_or((source, 0));
        if ecc <= best {
            break;
        }
        best = ecc;
        source = far;
    }
    best
}

/// Summary of a graph's degree distribution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DegreeStats {
    /// Minimum out-degree.
    pub min: usize,
    /// Maximum out-degree.
    pub max: usize,
    /// Mean out-degree.
    pub mean: f64,
    /// Coefficient of variation (stddev / mean); 0 for regular graphs,
    /// large for power-law graphs.
    pub cv: f64,
}

/// Computes [`DegreeStats`] in one pass over the offset array.
pub fn degree_stats(graph: &Graph) -> DegreeStats {
    let n = graph.num_nodes();
    let degrees = graph.offsets().windows(2).map(|w| (w[1] - w[0]) as usize);
    let (mut min, mut max, mut sum) = (usize::MAX, 0usize, 0usize);
    for d in degrees.clone() {
        min = min.min(d);
        max = max.max(d);
        sum += d;
    }
    if n == 0 {
        return DegreeStats {
            min: 0,
            max: 0,
            mean: 0.0,
            cv: 0.0,
        };
    }
    let mean = sum as f64 / n as f64;
    let var = degrees.map(|d| (d as f64 - mean).powi(2)).sum::<f64>() / n as f64;
    let cv = if mean > 0.0 { var.sqrt() / mean } else { 0.0 };
    DegreeStats { min, max, mean, cv }
}

/// The study's three input classes (paper Table VIII).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InputClass {
    /// High diameter, low near-uniform degree (e.g. `usa.ny`).
    Road,
    /// Low diameter, power-law degrees (e.g. social networks).
    Social,
    /// Low diameter, concentrated degrees (e.g. uniform random).
    Random,
}

impl std::fmt::Display for InputClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            InputClass::Road => "road",
            InputClass::Social => "social",
            InputClass::Random => "random",
        })
    }
}

/// Classifies a graph into one of the three input classes using diameter
/// and degree-skew heuristics. Used by examples to sanity-check that a
/// user-provided input lands in the regime they expect.
pub fn classify(graph: &Graph) -> InputClass {
    let stats = degree_stats(graph);
    let diam = estimate_diameter(graph);
    let n = graph.num_nodes().max(2) as f64;
    // Road networks: diameter scales like sqrt(n) or worse, whereas social
    // and random graphs have diameter O(log n) — far below sqrt(n) at any
    // realistic size.
    if (diam as f64) > 1.2 * n.sqrt() {
        return InputClass::Road;
    }
    if stats.cv > 1.0 {
        InputClass::Social
    } else {
        InputClass::Random
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::GraphBuilder;

    #[test]
    fn bfs_levels_on_path() {
        let g = generators::path(5).unwrap();
        assert_eq!(bfs_levels(&g, 0), vec![0, 1, 2, 3, 4]);
        assert_eq!(bfs_levels(&g, 2), vec![2, 1, 0, 1, 2]);
    }

    #[test]
    fn bfs_marks_unreachable() {
        let g = GraphBuilder::new(3)
            .undirected()
            .edge(0, 1)
            .build()
            .unwrap();
        assert_eq!(bfs_levels(&g, 0), vec![0, 1, UNREACHABLE]);
    }

    #[test]
    fn dijkstra_prefers_light_paths() {
        // 0 -10-> 1, 0 -1-> 2 -1-> 1: shortest 0..1 distance is 2.
        let g = GraphBuilder::new(3)
            .weighted_edge(0, 1, 10)
            .weighted_edge(0, 2, 1)
            .weighted_edge(2, 1, 1)
            .build()
            .unwrap();
        assert_eq!(dijkstra(&g, 0), vec![0, 2, 1]);
    }

    #[test]
    fn dijkstra_unreachable_is_max() {
        let g = GraphBuilder::new(2).build().unwrap();
        assert_eq!(dijkstra(&g, 0)[1], u64::MAX);
    }

    #[test]
    fn components_on_two_islands() {
        let g = GraphBuilder::new(5)
            .undirected()
            .edge(0, 1)
            .edge(2, 3)
            .build()
            .unwrap();
        let c = connected_components(&g);
        assert_eq!(c.component_count, 3);
        assert_eq!(c.labels, vec![0, 0, 2, 2, 4]);
    }

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new(4);
        assert!(uf.union(0, 1));
        assert!(!uf.union(1, 0));
        assert!(uf.connected(0, 1));
        assert!(!uf.connected(0, 2));
        assert!(uf.union(2, 3));
        assert!(uf.union(0, 3));
        assert!(uf.connected(1, 2));
    }

    #[test]
    fn mst_weight_of_cycle_drops_heaviest() {
        let g = GraphBuilder::new(3)
            .undirected()
            .weighted_edge(0, 1, 1)
            .weighted_edge(1, 2, 2)
            .weighted_edge(2, 0, 10)
            .build()
            .unwrap();
        assert_eq!(mst_weight(&g), 3);
    }

    #[test]
    fn mst_of_forest_sums_trees() {
        let g = GraphBuilder::new(4)
            .undirected()
            .weighted_edge(0, 1, 5)
            .weighted_edge(2, 3, 7)
            .build()
            .unwrap();
        assert_eq!(mst_weight(&g), 12);
    }

    #[test]
    fn triangle_count_exact_shapes() {
        assert_eq!(triangle_count(&generators::complete(4).unwrap()), 4);
        assert_eq!(triangle_count(&generators::complete(5).unwrap()), 10);
        assert_eq!(triangle_count(&generators::cycle(4).unwrap()), 0);
        assert_eq!(triangle_count(&generators::star(6).unwrap()), 0);
    }

    #[test]
    fn clustering_of_exact_shapes() {
        assert!((clustering_coefficient(&generators::complete(5).unwrap()) - 1.0).abs() < 1e-12);
        assert_eq!(clustering_coefficient(&generators::star(8).unwrap()), 0.0);
        assert_eq!(clustering_coefficient(&generators::path(2).unwrap()), 0.0);
        // A triangle with a pendant: node degrees 2,2,3,1.
        let g = GraphBuilder::new(4)
            .undirected()
            .edges([(0, 1), (1, 2), (0, 2), (2, 3)])
            .build()
            .unwrap();
        let cc = clustering_coefficient(&g);
        assert!((cc - (1.0 + 1.0 + 1.0 / 3.0) / 3.0).abs() < 1e-12, "{cc}");
    }

    #[test]
    fn social_graphs_cluster_more_than_random() {
        let social = generators::barabasi_albert(600, 4, 2).unwrap();
        let random = generators::uniform_random(600, 8.0, 2).unwrap();
        assert!(clustering_coefficient(&social) > clustering_coefficient(&random));
    }

    #[test]
    fn degree_histogram_buckets_by_power_of_two() {
        let g = generators::star(9).unwrap(); // hub degree 8, leaves 1
        let h = degree_histogram(&g);
        assert_eq!(h[0], 8); // leaves
        assert_eq!(h[3], 1); // hub in [8, 16)
        assert_eq!(h.iter().sum::<usize>(), 9);
    }

    #[test]
    fn assortativity_is_negative_for_stars_and_bounded() {
        let star = generators::star(20).unwrap();
        let a = degree_assortativity(&star);
        assert!(a < -0.9, "{a}"); // hubs only touch leaves
        for g in [
            generators::rmat(8, 5, 3).unwrap(),
            generators::cycle(12).unwrap(),
        ] {
            let a = degree_assortativity(&g);
            assert!((-1.0..=1.0).contains(&a), "{a}");
        }
        // Regular graphs have no degree variance.
        assert_eq!(degree_assortativity(&generators::cycle(6).unwrap()), 0.0);
    }

    #[test]
    fn diameter_of_path() {
        let g = generators::path(10).unwrap();
        assert_eq!(estimate_diameter(&g), 9);
    }

    #[test]
    fn degree_stats_on_star() {
        let s = degree_stats(&generators::star(11).unwrap());
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 10);
        assert!(s.cv > 1.0);
    }

    #[test]
    fn classification_matches_generators() {
        assert_eq!(
            classify(&generators::road_grid(24, 24, 1).unwrap()),
            InputClass::Road
        );
        assert_eq!(
            classify(&generators::rmat(10, 8, 1).unwrap()),
            InputClass::Social
        );
        assert_eq!(
            classify(&generators::uniform_random(1024, 8.0, 1).unwrap()),
            InputClass::Random
        );
    }

    #[test]
    fn input_class_display_names() {
        assert_eq!(InputClass::Road.to_string(), "road");
        assert_eq!(InputClass::Social.to_string(), "social");
        assert_eq!(InputClass::Random.to_string(), "random");
    }
}

//! Deterministic pseudo-random number generation for the whole workspace.
//!
//! Experiments in this repository must be exactly reproducible across
//! machines and runs, so nothing may consume OS entropy. This module
//! provides a tiny, well-tested generator built on the SplitMix64 mixing
//! function (Steele, Lea & Flood, OOPSLA 2014), which is statistically
//! strong enough for workload generation and timing-noise synthesis.
//!
//! # Example
//!
//! ```
//! use gpp_graph::rng::Rng64;
//!
//! let mut a = Rng64::new(42);
//! let mut b = Rng64::new(42);
//! assert_eq!(a.next_u64(), b.next_u64()); // fully deterministic
//! ```

/// A deterministic 64-bit PRNG (SplitMix64).
///
/// `Rng64` is `Copy`-cheap to clone and never fails. Two generators
/// constructed with the same seed produce identical streams.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng64 {
    state: u64,
}

impl Rng64 {
    /// Creates a generator from a seed. Any seed (including 0) is valid.
    pub fn new(seed: u64) -> Self {
        Rng64 {
            state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Returns the next value in the stream.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a uniformly distributed value in `0..bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range bound must be positive");
        // Multiply-shift rejection-free range reduction (Lemire).
        let x = self.next_u64();
        ((x as u128 * bound as u128) >> 64) as u64
    }

    /// Returns a uniformly distributed `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Returns a standard normal sample (Box–Muller transform).
    pub fn next_normal(&mut self) -> f64 {
        // Avoid ln(0) by nudging u1 away from zero.
        let u1 = self.next_f64().max(f64::MIN_POSITIVE);
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Returns a log-normal sample with the given parameters of the
    /// underlying normal distribution.
    ///
    /// Used by the simulator to model multiplicative timing noise:
    /// `exp(mu + sigma * N(0,1))`.
    pub fn next_log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        (mu + sigma * self.next_normal()).exp()
    }

    /// Derives an independent child generator; used to give each
    /// (application, input, chip, configuration) cell of the study its own
    /// stream so that adding cells never perturbs existing ones.
    pub fn fork(&mut self, stream: u64) -> Rng64 {
        let mut mixer = Rng64::new(self.next_u64() ^ stream.rotate_left(17));
        Rng64::new(mixer.next_u64())
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.gen_range(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = Rng64::new(123);
        let mut b = Rng64::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng64::new(1);
        let mut b = Rng64::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn range_is_respected() {
        let mut r = Rng64::new(7);
        for _ in 0..10_000 {
            assert!(r.gen_range(13) < 13);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bound_panics() {
        Rng64::new(0).gen_range(0);
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = Rng64::new(99);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_roughly_uniform() {
        let mut r = Rng64::new(5);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[r.gen_range(10) as usize] += 1;
        }
        for &c in &counts {
            assert!(
                (8_000..12_000).contains(&c),
                "bucket count {c} far from uniform"
            );
        }
    }

    #[test]
    fn normal_mean_and_variance() {
        let mut r = Rng64::new(11);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| r.next_normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn log_normal_is_positive() {
        let mut r = Rng64::new(3);
        for _ in 0..1_000 {
            assert!(r.next_log_normal(0.0, 0.05) > 0.0);
        }
    }

    #[test]
    fn log_normal_median_near_exp_mu() {
        let mut r = Rng64::new(21);
        let mut xs: Vec<f64> = (0..50_001).map(|_| r.next_log_normal(1.0, 0.3)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = xs[xs.len() / 2];
        assert!((median - 1f64.exp()).abs() < 0.1, "median {median}");
    }

    #[test]
    fn forked_streams_are_independent() {
        let mut base = Rng64::new(42);
        let mut c1 = base.fork(0);
        let mut c2 = base.fork(1);
        let same = (0..32).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng64::new(8);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..100).collect::<Vec<_>>(),
            "shuffle left input unchanged"
        );
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = Rng64::new(4);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }
}

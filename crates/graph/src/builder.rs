//! Incremental construction of [`Graph`] values from edge lists.

use crate::{Graph, GraphError, NodeId};

/// A non-consuming builder for [`Graph`].
///
/// Edges may be added in any order; [`GraphBuilder::build`] sorts them,
/// removes duplicates (keeping the minimum weight, which is what shortest
/// path style algorithms want), optionally drops self-loops, and optionally
/// mirrors every edge to produce an undirected graph.
///
/// # Example
///
/// ```
/// use gpp_graph::GraphBuilder;
///
/// let g = GraphBuilder::new(4)
///     .undirected()
///     .edge(0, 1)
///     .weighted_edge(1, 2, 5)
///     .edge(2, 3)
///     .build()?;
/// assert_eq!(g.num_edges(), 6);
/// # Ok::<(), gpp_graph::GraphError>(())
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    num_nodes: usize,
    edges: Vec<(NodeId, NodeId, u32)>,
    directed: bool,
    keep_self_loops: bool,
    weighted: bool,
}

impl GraphBuilder {
    /// Creates a builder for a graph with `num_nodes` nodes and no edges.
    ///
    /// The graph is directed by default; call [`GraphBuilder::undirected`]
    /// to mirror every edge.
    pub fn new(num_nodes: usize) -> Self {
        GraphBuilder {
            num_nodes,
            edges: Vec::new(),
            directed: true,
            keep_self_loops: false,
            weighted: false,
        }
    }

    /// Mirrors every added edge so the built graph is undirected.
    pub fn undirected(&mut self) -> &mut Self {
        self.directed = false;
        self
    }

    /// Keeps self-loops instead of silently dropping them (the default).
    pub fn keep_self_loops(&mut self) -> &mut Self {
        self.keep_self_loops = true;
        self
    }

    /// Adds an unweighted edge `u -> v` (weight 1).
    pub fn edge(&mut self, u: NodeId, v: NodeId) -> &mut Self {
        self.edges.push((u, v, 1));
        self
    }

    /// Adds a weighted edge `u -> v`.
    pub fn weighted_edge(&mut self, u: NodeId, v: NodeId, w: u32) -> &mut Self {
        self.weighted = true;
        self.edges.push((u, v, w));
        self
    }

    /// Adds edges from an iterator of `(u, v)` pairs.
    pub fn edges<I: IntoIterator<Item = (NodeId, NodeId)>>(&mut self, iter: I) -> &mut Self {
        for (u, v) in iter {
            self.edge(u, v);
        }
        self
    }

    /// Number of edges added so far (before dedup/mirroring).
    pub fn pending_edges(&self) -> usize {
        self.edges.len()
    }

    /// Builds the CSR graph.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::EmptyGraph`] for zero-node graphs and
    /// [`GraphError::NodeOutOfBounds`] if any edge endpoint is out of range.
    pub fn build(&self) -> Result<Graph, GraphError> {
        if self.num_nodes == 0 {
            return Err(GraphError::EmptyGraph);
        }
        let n = self.num_nodes;
        for &(u, v, _) in &self.edges {
            for node in [u, v] {
                if node as usize >= n {
                    return Err(GraphError::NodeOutOfBounds {
                        node: node as u64,
                        num_nodes: n as u64,
                    });
                }
            }
        }

        let mut arcs: Vec<(NodeId, NodeId, u32)> =
            Vec::with_capacity(self.edges.len() * if self.directed { 1 } else { 2 });
        for &(u, v, w) in &self.edges {
            if u == v && !self.keep_self_loops {
                continue;
            }
            arcs.push((u, v, w));
            if !self.directed && u != v {
                arcs.push((v, u, w));
            }
        }
        // Sort then dedup keeping the minimum weight per (u, v).
        arcs.sort_unstable();
        arcs.dedup_by(|next, prev| {
            if next.0 == prev.0 && next.1 == prev.1 {
                prev.2 = prev.2.min(next.2);
                true
            } else {
                false
            }
        });

        let mut offsets = vec![0u32; n + 1];
        for &(u, _, _) in &arcs {
            offsets[u as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let targets: Vec<NodeId> = arcs.iter().map(|a| a.1).collect();
        let weights: Vec<u32> = if self.weighted {
            arcs.iter().map(|a| a.2).collect()
        } else {
            Vec::new()
        };

        Graph::from_csr(offsets, targets, weights, self.directed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_nodes_is_an_error() {
        assert_eq!(
            GraphBuilder::new(0).build().unwrap_err(),
            GraphError::EmptyGraph
        );
    }

    #[test]
    fn out_of_bounds_edge_is_an_error() {
        let err = GraphBuilder::new(2).edge(0, 2).build().unwrap_err();
        assert_eq!(
            err,
            GraphError::NodeOutOfBounds {
                node: 2,
                num_nodes: 2
            }
        );
    }

    #[test]
    fn duplicate_edges_collapse_to_min_weight() {
        let g = GraphBuilder::new(2)
            .weighted_edge(0, 1, 7)
            .weighted_edge(0, 1, 3)
            .weighted_edge(0, 1, 9)
            .build()
            .expect("valid");
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.edge_weight(0, 1), Some(3));
    }

    #[test]
    fn self_loops_dropped_by_default() {
        let g = GraphBuilder::new(2)
            .edge(0, 0)
            .edge(0, 1)
            .build()
            .expect("valid");
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn self_loops_kept_on_request() {
        let g = GraphBuilder::new(2)
            .keep_self_loops()
            .edge(0, 0)
            .build()
            .expect("valid");
        assert_eq!(g.num_edges(), 1);
        assert!(g.has_edge(0, 0));
    }

    #[test]
    fn undirected_mirrors_edges() {
        let g = GraphBuilder::new(3)
            .undirected()
            .edge(0, 1)
            .build()
            .expect("valid");
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn undirected_self_loop_not_doubled() {
        let g = GraphBuilder::new(1)
            .undirected()
            .keep_self_loops()
            .edge(0, 0)
            .build()
            .expect("valid");
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn neighbors_are_sorted() {
        let g = GraphBuilder::new(5)
            .edges([(0, 4), (0, 1), (0, 3), (0, 2)])
            .build()
            .expect("valid");
        assert_eq!(g.neighbors(0), &[1, 2, 3, 4]);
    }

    #[test]
    fn pending_edges_counts_additions() {
        let mut b = GraphBuilder::new(3);
        b.edge(0, 1).edge(1, 2);
        assert_eq!(b.pending_edges(), 2);
    }

    #[test]
    fn isolated_nodes_allowed() {
        let g = GraphBuilder::new(10).edge(0, 9).build().expect("valid");
        assert_eq!(g.num_nodes(), 10);
        assert_eq!(g.degree(5), 0);
    }
}

//! Error types for graph construction and I/O.

use std::fmt;

/// Errors produced when building, validating, or parsing graphs.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// An edge endpoint referenced a node id `node` outside `0..num_nodes`.
    NodeOutOfBounds {
        /// The offending node id.
        node: u64,
        /// The number of nodes in the graph under construction.
        num_nodes: u64,
    },
    /// The requested graph shape has zero nodes where at least one is needed.
    EmptyGraph,
    /// A generator was asked for an impossible configuration
    /// (e.g. average degree exceeding `n - 1`).
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human-readable description of the constraint that was violated.
        reason: String,
    },
    /// A parse failure in [`crate::io`], with the 1-based line number.
    Parse {
        /// Line at which parsing failed.
        line: usize,
        /// Description of what went wrong.
        reason: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfBounds { node, num_nodes } => {
                write!(
                    f,
                    "node id {node} out of bounds for graph with {num_nodes} nodes"
                )
            }
            GraphError::EmptyGraph => write!(f, "graph must have at least one node"),
            GraphError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            GraphError::Parse { line, reason } => {
                write!(f, "parse error at line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_node_and_bound() {
        let e = GraphError::NodeOutOfBounds {
            node: 9,
            num_nodes: 4,
        };
        let s = e.to_string();
        assert!(s.contains('9') && s.contains('4'), "{s}");
    }

    #[test]
    fn display_parse_mentions_line() {
        let e = GraphError::Parse {
            line: 3,
            reason: "bad token".into(),
        };
        assert!(e.to_string().contains("line 3"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GraphError>();
    }
}

//! Graph substrate for the performance-portability study.
//!
//! This crate provides everything the upper layers need from "a graph":
//!
//! - [`Graph`]: a validated, immutable compressed-sparse-row (CSR) graph,
//!   optionally weighted and optionally directed.
//! - [`GraphBuilder`]: incremental, fallible construction from edge lists.
//! - [`generators`]: synthetic workload generators spanning the three input
//!   classes of the paper (road networks, social networks, uniform random
//!   graphs) plus small deterministic shapes used by tests.
//! - [`properties`]: structural analyses (degree statistics, BFS levels,
//!   diameter estimation, connected components, input classification).
//! - [`transform`]: component extraction, relabelling, and reversal.
//! - [`io`]: plain-text edge-list and DIMACS-style parsing/serialisation.
//! - [`rng`]: a small deterministic PRNG shared by the whole workspace so
//!   that every experiment is reproducible without OS entropy.
//!
//! # Example
//!
//! ```
//! use gpp_graph::{generators, properties};
//!
//! let g = generators::road_grid(16, 16, 7)?;
//! assert!(properties::estimate_diameter(&g) > 16);
//! # Ok::<(), gpp_graph::GraphError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod csr;
mod error;
pub mod generators;
pub mod io;
pub mod properties;
pub mod rng;
pub mod transform;

pub use builder::GraphBuilder;
pub use csr::{Graph, NeighborIter, NodeId};
pub use error::GraphError;

//! Synthetic graph generators spanning the study's three input classes.
//!
//! The paper (Table VIII) evaluates on three classes of inputs whose
//! structure drives performance in different ways:
//!
//! - **road networks** (`usa.ny`): large diameter, low and nearly uniform
//!   degree — reproduced by [`road_grid`];
//! - **social networks**: small diameter, power-law degree distribution —
//!   reproduced by [`rmat`];
//! - **random graphs**: small diameter, binomial (concentrated) degrees —
//!   reproduced by [`uniform_random`].
//!
//! All generators are deterministic in their `seed` argument. Small exact
//! shapes ([`path`], [`cycle`], [`star`], [`complete`], [`binary_tree`]) are
//! provided for tests and examples.

use crate::rng::Rng64;
use crate::{Graph, GraphBuilder, GraphError, NodeId};

/// Maximum edge weight produced by the weighted generators.
pub const MAX_WEIGHT: u32 = 100;

/// Generates a road-network-like graph: a `width × height` grid with
/// unit-ish random weights, a sprinkle of diagonal shortcuts, and a few
/// random deletions so degrees are not perfectly regular.
///
/// The result is undirected, weighted, connected, has diameter
/// `Θ(width + height)` and mean degree ≈ 3–4, matching the structural
/// profile of `usa.ny` in the paper.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if either dimension is < 2.
///
/// # Example
///
/// ```
/// let g = gpp_graph::generators::road_grid(8, 8, 1)?;
/// assert_eq!(g.num_nodes(), 64);
/// # Ok::<(), gpp_graph::GraphError>(())
/// ```
pub fn road_grid(width: usize, height: usize, seed: u64) -> Result<Graph, GraphError> {
    if width < 2 || height < 2 {
        return Err(GraphError::InvalidParameter {
            name: "width/height",
            reason: format!("grid must be at least 2x2, got {width}x{height}"),
        });
    }
    let n = width * height;
    let mut rng = Rng64::new(seed ^ 0x0ead_0001);
    let mut b = GraphBuilder::new(n);
    b.undirected();
    let id = |x: usize, y: usize| (y * width + x) as NodeId;
    for y in 0..height {
        for x in 0..width {
            let w1 = 1 + rng.gen_range(MAX_WEIGHT as u64) as u32;
            let w2 = 1 + rng.gen_range(MAX_WEIGHT as u64) as u32;
            // Drop ~4% of grid edges to roughen the degree distribution, but
            // never the spanning "spine" (x == 0 column, y == 0 row edges),
            // so the graph stays connected.
            if x + 1 < width && (y == 0 || !rng.gen_bool(0.04)) {
                b.weighted_edge(id(x, y), id(x + 1, y), w1);
            }
            if y + 1 < height && (x == 0 || !rng.gen_bool(0.04)) {
                b.weighted_edge(id(x, y), id(x, y + 1), w2);
            }
            // Occasional diagonal shortcut, like highway ramps.
            if x + 1 < width && y + 1 < height && rng.gen_bool(0.05) {
                let w3 = 1 + rng.gen_range(MAX_WEIGHT as u64) as u32;
                b.weighted_edge(id(x, y), id(x + 1, y + 1), w3);
            }
        }
    }
    b.build()
}

/// Generates a social-network-like graph with the R-MAT recursive-matrix
/// procedure (Chakrabarti, Zhan & Faloutsos, SDM 2004) using the canonical
/// skewed partition `(a, b, c, d) = (0.57, 0.19, 0.19, 0.05)`.
///
/// The result has `2^scale` nodes and approximately `edge_factor · 2^scale`
/// undirected weighted edges, a heavy-tailed degree distribution, and a
/// small diameter.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `scale` is 0 or > 28, or if
/// `edge_factor` is 0.
///
/// # Example
///
/// ```
/// let g = gpp_graph::generators::rmat(8, 8, 3)?;
/// assert_eq!(g.num_nodes(), 256);
/// # Ok::<(), gpp_graph::GraphError>(())
/// ```
pub fn rmat(scale: u32, edge_factor: usize, seed: u64) -> Result<Graph, GraphError> {
    if scale == 0 || scale > 28 {
        return Err(GraphError::InvalidParameter {
            name: "scale",
            reason: format!("scale must be in 1..=28, got {scale}"),
        });
    }
    if edge_factor == 0 {
        return Err(GraphError::InvalidParameter {
            name: "edge_factor",
            reason: "edge_factor must be positive".into(),
        });
    }
    let n = 1usize << scale;
    let m = n.saturating_mul(edge_factor);
    let mut rng = Rng64::new(seed ^ 0x50c1_a100);
    let mut b = GraphBuilder::new(n);
    b.undirected();
    const A: f64 = 0.57;
    const B: f64 = 0.19;
    const C: f64 = 0.19;
    for _ in 0..m {
        let (mut u, mut v) = (0usize, 0usize);
        for _ in 0..scale {
            let r = rng.next_f64();
            let (du, dv) = if r < A {
                (0, 0)
            } else if r < A + B {
                (0, 1)
            } else if r < A + B + C {
                (1, 0)
            } else {
                (1, 1)
            };
            u = (u << 1) | du;
            v = (v << 1) | dv;
        }
        if u == v {
            continue;
        }
        let w = 1 + rng.gen_range(MAX_WEIGHT as u64) as u32;
        b.weighted_edge(u as NodeId, v as NodeId, w);
    }
    b.build()
}

/// Generates a uniform random graph: `n` nodes, approximately
/// `n · avg_degree / 2` undirected weighted edges chosen uniformly.
///
/// Degrees concentrate tightly around `avg_degree` (binomial), producing
/// the low-skew regime where nested-parallelism load balancing mostly adds
/// overhead — the contrast input of the study.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `n < 2` or
/// `avg_degree >= n`.
///
/// # Example
///
/// ```
/// let g = gpp_graph::generators::uniform_random(100, 8.0, 5)?;
/// assert!(g.mean_degree() > 6.0 && g.mean_degree() < 10.0);
/// # Ok::<(), gpp_graph::GraphError>(())
/// ```
pub fn uniform_random(n: usize, avg_degree: f64, seed: u64) -> Result<Graph, GraphError> {
    if n < 2 {
        return Err(GraphError::InvalidParameter {
            name: "n",
            reason: format!("need at least 2 nodes, got {n}"),
        });
    }
    if avg_degree <= 0.0 || avg_degree.is_nan() || avg_degree >= n as f64 {
        return Err(GraphError::InvalidParameter {
            name: "avg_degree",
            reason: format!("avg_degree must be in (0, n), got {avg_degree}"),
        });
    }
    let m = ((n as f64 * avg_degree) / 2.0).round() as usize;
    let mut rng = Rng64::new(seed ^ 0x0a4d_0a4d);
    let mut b = GraphBuilder::new(n);
    b.undirected();
    for _ in 0..m {
        let u = rng.gen_range(n as u64) as NodeId;
        let v = rng.gen_range(n as u64) as NodeId;
        if u == v {
            continue;
        }
        let w = 1 + rng.gen_range(MAX_WEIGHT as u64) as u32;
        b.weighted_edge(u, v, w);
    }
    b.build()
}

/// Generates a Barabási–Albert preferential-attachment graph: starting
/// from a small clique, each new node attaches to `m` existing nodes
/// chosen proportionally to their degree. A second power-law social
/// model alongside [`rmat`], with a guaranteed connected result.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `m == 0` or `n <= m`.
///
/// # Example
///
/// ```
/// let g = gpp_graph::generators::barabasi_albert(500, 3, 1)?;
/// assert_eq!(g.num_nodes(), 500);
/// # Ok::<(), gpp_graph::GraphError>(())
/// ```
pub fn barabasi_albert(n: usize, m: usize, seed: u64) -> Result<Graph, GraphError> {
    if m == 0 {
        return Err(GraphError::InvalidParameter {
            name: "m",
            reason: "attachment count must be positive".into(),
        });
    }
    if n <= m {
        return Err(GraphError::InvalidParameter {
            name: "n",
            reason: format!("need more than m = {m} nodes, got {n}"),
        });
    }
    let mut rng = Rng64::new(seed ^ 0xba2a_ba51);
    let mut b = GraphBuilder::new(n);
    b.undirected();
    // Attachment targets are drawn from this multiset, where every node
    // appears once per incident edge end — the classic O(m) sampler.
    let mut ends: Vec<NodeId> = Vec::with_capacity(2 * n * m);
    // Seed clique over the first m + 1 nodes.
    for u in 0..=(m as NodeId) {
        for v in (u + 1)..=(m as NodeId) {
            let w = 1 + rng.gen_range(MAX_WEIGHT as u64) as u32;
            b.weighted_edge(u, v, w);
            ends.push(u);
            ends.push(v);
        }
    }
    for u in (m + 1)..n {
        let mut chosen: Vec<NodeId> = Vec::with_capacity(m);
        while chosen.len() < m {
            let v = ends[rng.gen_range(ends.len() as u64) as usize];
            if v != u as NodeId && !chosen.contains(&v) {
                chosen.push(v);
            }
        }
        for &v in &chosen {
            let w = 1 + rng.gen_range(MAX_WEIGHT as u64) as u32;
            b.weighted_edge(u as NodeId, v, w);
            ends.push(u as NodeId);
            ends.push(v);
        }
    }
    b.build()
}

/// A simple path `0 - 1 - ... - (n-1)` (undirected, unit weights).
///
/// # Errors
///
/// Returns [`GraphError::EmptyGraph`] if `n == 0`.
pub fn path(n: usize) -> Result<Graph, GraphError> {
    let mut b = GraphBuilder::new(n);
    b.undirected();
    for i in 1..n {
        b.edge((i - 1) as NodeId, i as NodeId);
    }
    b.build()
}

/// A cycle of `n` nodes (undirected).
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `n < 3`.
pub fn cycle(n: usize) -> Result<Graph, GraphError> {
    if n < 3 {
        return Err(GraphError::InvalidParameter {
            name: "n",
            reason: format!("cycle needs at least 3 nodes, got {n}"),
        });
    }
    let mut b = GraphBuilder::new(n);
    b.undirected();
    for i in 0..n {
        b.edge(i as NodeId, ((i + 1) % n) as NodeId);
    }
    b.build()
}

/// A star: node 0 connected to all others (undirected). The canonical
/// maximum-skew input for load-balancing tests.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `n < 2`.
pub fn star(n: usize) -> Result<Graph, GraphError> {
    if n < 2 {
        return Err(GraphError::InvalidParameter {
            name: "n",
            reason: format!("star needs at least 2 nodes, got {n}"),
        });
    }
    let mut b = GraphBuilder::new(n);
    b.undirected();
    for i in 1..n {
        b.edge(0, i as NodeId);
    }
    b.build()
}

/// The complete graph on `n` nodes (undirected).
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `n < 2`.
pub fn complete(n: usize) -> Result<Graph, GraphError> {
    if n < 2 {
        return Err(GraphError::InvalidParameter {
            name: "n",
            reason: format!("complete graph needs at least 2 nodes, got {n}"),
        });
    }
    let mut b = GraphBuilder::new(n);
    b.undirected();
    for u in 0..n {
        for v in (u + 1)..n {
            b.edge(u as NodeId, v as NodeId);
        }
    }
    b.build()
}

/// A complete binary tree of the given `depth` (depth 0 = single node).
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `depth > 24`.
pub fn binary_tree(depth: u32) -> Result<Graph, GraphError> {
    if depth > 24 {
        return Err(GraphError::InvalidParameter {
            name: "depth",
            reason: format!("depth must be <= 24, got {depth}"),
        });
    }
    let n = (1usize << (depth + 1)) - 1;
    let mut b = GraphBuilder::new(n);
    b.undirected();
    for i in 1..n {
        b.edge(((i - 1) / 2) as NodeId, i as NodeId);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties;

    #[test]
    fn road_grid_is_connected_and_long() {
        let g = road_grid(20, 20, 3).expect("valid");
        assert_eq!(g.num_nodes(), 400);
        assert_eq!(properties::connected_components(&g).component_count, 1);
        assert!(properties::estimate_diameter(&g) >= 20);
        assert!(g.mean_degree() < 5.0);
    }

    #[test]
    fn road_grid_deterministic() {
        assert_eq!(road_grid(10, 10, 9).unwrap(), road_grid(10, 10, 9).unwrap());
    }

    #[test]
    fn road_grid_rejects_degenerate() {
        assert!(road_grid(1, 5, 0).is_err());
    }

    #[test]
    fn rmat_is_skewed() {
        let g = rmat(10, 8, 1).expect("valid");
        assert_eq!(g.num_nodes(), 1024);
        // Power-law: the max degree dwarfs the mean.
        assert!(g.max_degree() as f64 > 6.0 * g.mean_degree());
    }

    #[test]
    fn rmat_rejects_bad_scale() {
        assert!(rmat(0, 8, 1).is_err());
        assert!(rmat(29, 8, 1).is_err());
        assert!(rmat(5, 0, 1).is_err());
    }

    #[test]
    fn uniform_random_is_flat() {
        let g = uniform_random(2000, 12.0, 4).expect("valid");
        // Binomial degrees: max degree within a small factor of the mean.
        assert!((g.max_degree() as f64) < 4.0 * g.mean_degree());
    }

    #[test]
    fn uniform_random_rejects_bad_degree() {
        assert!(uniform_random(10, 10.0, 0).is_err());
        assert!(uniform_random(10, 0.0, 0).is_err());
        assert!(uniform_random(1, 0.5, 0).is_err());
    }

    #[test]
    fn barabasi_albert_is_connected_and_skewed() {
        let g = barabasi_albert(1_000, 3, 7).expect("valid");
        assert_eq!(g.num_nodes(), 1_000);
        assert_eq!(properties::connected_components(&g).component_count, 1);
        assert!(g.max_degree() as f64 > 5.0 * g.mean_degree());
    }

    #[test]
    fn barabasi_albert_rejects_bad_parameters() {
        assert!(barabasi_albert(5, 0, 1).is_err());
        assert!(barabasi_albert(3, 3, 1).is_err());
    }

    #[test]
    fn barabasi_albert_is_deterministic() {
        assert_eq!(
            barabasi_albert(200, 2, 5).unwrap(),
            barabasi_albert(200, 2, 5).unwrap()
        );
    }

    #[test]
    fn path_endpoints_have_degree_one() {
        let g = path(5).expect("valid");
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(4), 1);
        assert_eq!(g.degree(2), 2);
    }

    #[test]
    fn single_node_path() {
        let g = path(1).expect("valid");
        assert_eq!(g.num_nodes(), 1);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn cycle_degrees_all_two() {
        let g = cycle(7).expect("valid");
        assert!(g.nodes().all(|v| g.degree(v) == 2));
        assert!(cycle(2).is_err());
    }

    #[test]
    fn star_hub_degree() {
        let g = star(10).expect("valid");
        assert_eq!(g.degree(0), 9);
        assert!(g.nodes().skip(1).all(|v| g.degree(v) == 1));
    }

    #[test]
    fn complete_graph_edge_count() {
        let g = complete(6).expect("valid");
        assert_eq!(g.num_edges(), 6 * 5);
    }

    #[test]
    fn binary_tree_shape() {
        let g = binary_tree(3).expect("valid");
        assert_eq!(g.num_nodes(), 15);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(14), 1);
    }

    #[test]
    fn generators_produce_weighted_study_inputs() {
        assert!(road_grid(8, 8, 0).unwrap().is_weighted());
        assert!(rmat(6, 4, 0).unwrap().is_weighted());
        assert!(uniform_random(64, 4.0, 0).unwrap().is_weighted());
    }
}

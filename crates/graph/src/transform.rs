//! Graph transformations: extraction, relabelling, and reversal.
//!
//! Relabelling matters to GPU graph processing because thread ids map to
//! node ids: a BFS or degree-sorted order changes which nodes share a
//! workgroup, and therefore how much intra-workgroup load imbalance and
//! memory divergence the kernels see.

use crate::properties::{bfs_levels, connected_components, UNREACHABLE};
use crate::{Graph, GraphBuilder, GraphError, NodeId};

/// Extracts the largest connected component (ties broken towards the
/// smaller minimum node id), relabelling its nodes densely from 0 in the
/// original id order.
///
/// # Errors
///
/// Propagates construction errors (none expected for valid inputs).
pub fn largest_component(graph: &Graph) -> Result<Graph, GraphError> {
    let comps = connected_components(graph);
    // Count component sizes by label.
    let mut sizes: std::collections::HashMap<NodeId, usize> = std::collections::HashMap::new();
    for &label in &comps.labels {
        *sizes.entry(label).or_default() += 1;
    }
    let (&best_label, _) = sizes
        .iter()
        .max_by_key(|(label, size)| (**size, std::cmp::Reverse(**label)))
        .expect("graphs have at least one node");
    let keep: Vec<NodeId> = graph
        .nodes()
        .filter(|&v| comps.labels[v as usize] == best_label)
        .collect();
    relabel_subgraph(graph, &keep)
}

/// Relabels the graph so node ids follow BFS discovery order from
/// `source` (unreached nodes keep their relative order at the end).
/// Improves locality: frontier neighbours end up in nearby workgroups.
///
/// # Errors
///
/// Propagates construction errors (none expected for valid inputs).
///
/// # Panics
///
/// Panics if `source` is out of bounds.
pub fn relabel_by_bfs(graph: &Graph, source: NodeId) -> Result<Graph, GraphError> {
    let levels = bfs_levels(graph, source);
    let mut order: Vec<NodeId> = graph.nodes().collect();
    order.sort_by_key(|&v| {
        let l = levels[v as usize];
        (if l == UNREACHABLE { u32::MAX } else { l }, v)
    });
    relabel_subgraph(graph, &order)
}

/// Relabels the graph by descending degree (GPU graph frameworks do this
/// so the heavy nodes share the first workgroups).
///
/// # Errors
///
/// Propagates construction errors (none expected for valid inputs).
pub fn relabel_by_degree(graph: &Graph) -> Result<Graph, GraphError> {
    let mut order: Vec<NodeId> = graph.nodes().collect();
    order.sort_by_key(|&v| (std::cmp::Reverse(graph.degree(v)), v));
    relabel_subgraph(graph, &order)
}

/// Reverses every arc of a directed graph (the transpose); undirected
/// graphs are returned unchanged (their arc set is symmetric).
///
/// # Errors
///
/// Propagates construction errors (none expected for valid inputs).
pub fn reverse(graph: &Graph) -> Result<Graph, GraphError> {
    if !graph.is_directed() {
        return Ok(graph.clone());
    }
    let mut b = GraphBuilder::new(graph.num_nodes());
    for u in graph.nodes() {
        for (v, w) in graph.out_edges(u) {
            if graph.is_weighted() {
                b.weighted_edge(v, u, w);
            } else {
                b.edge(v, u);
            }
        }
    }
    b.build()
}

/// Builds the subgraph induced by `order`, relabelling `order[i]` to `i`
/// and keeping only edges between kept nodes. When `order` is a
/// permutation of all nodes this is a pure relabelling.
fn relabel_subgraph(graph: &Graph, order: &[NodeId]) -> Result<Graph, GraphError> {
    let mut new_id = vec![NodeId::MAX; graph.num_nodes()];
    for (new, &old) in order.iter().enumerate() {
        new_id[old as usize] = new as NodeId;
    }
    let mut b = GraphBuilder::new(order.len());
    if !graph.is_directed() {
        b.undirected();
    }
    for &old_u in order {
        let u = new_id[old_u as usize];
        for (old_v, w) in graph.out_edges(old_u) {
            let v = new_id[old_v as usize];
            if v == NodeId::MAX {
                continue;
            }
            // Each undirected edge appears twice in the arc set; add once.
            if !graph.is_directed() && v < u {
                continue;
            }
            if graph.is_weighted() {
                b.weighted_edge(u, v, w);
            } else {
                b.edge(u, v);
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::properties;

    #[test]
    fn largest_component_keeps_the_big_island() {
        let g = GraphBuilder::new(10)
            .undirected()
            .edges([(0, 1), (1, 2), (2, 3), (5, 6)])
            .build()
            .unwrap();
        let lc = largest_component(&g).unwrap();
        assert_eq!(lc.num_nodes(), 4);
        assert_eq!(properties::connected_components(&lc).component_count, 1);
        assert_eq!(lc.num_edges(), 6);
    }

    #[test]
    fn largest_component_of_connected_graph_is_identity_sized() {
        let g = generators::road_grid(8, 8, 1).unwrap();
        let lc = largest_component(&g).unwrap();
        assert_eq!(lc.num_nodes(), g.num_nodes());
        assert_eq!(lc.num_edges(), g.num_edges());
    }

    #[test]
    fn bfs_relabel_preserves_structure() {
        let g = generators::rmat(7, 5, 3).unwrap();
        let r = relabel_by_bfs(&g, 0).unwrap();
        assert_eq!(r.num_nodes(), g.num_nodes());
        assert_eq!(r.num_edges(), g.num_edges());
        // Degree multiset is preserved.
        let mut d1: Vec<usize> = g.nodes().map(|v| g.degree(v)).collect();
        let mut d2: Vec<usize> = r.nodes().map(|v| r.degree(v)).collect();
        d1.sort_unstable();
        d2.sort_unstable();
        assert_eq!(d1, d2);
        // BFS levels from the new source are sorted by node id.
        let levels = properties::bfs_levels(&r, 0);
        let reached: Vec<u32> = levels
            .iter()
            .copied()
            .filter(|&l| l != properties::UNREACHABLE)
            .collect();
        assert!(
            reached.windows(2).all(|w| w[0] <= w[1]),
            "levels not monotone: {reached:?}"
        );
    }

    #[test]
    fn degree_relabel_puts_heavy_nodes_first() {
        let g = generators::rmat(7, 6, 5).unwrap();
        let r = relabel_by_degree(&g).unwrap();
        let degrees: Vec<usize> = r.nodes().map(|v| r.degree(v)).collect();
        assert!(degrees.windows(2).all(|w| w[0] >= w[1]));
        assert_eq!(r.max_degree(), g.max_degree());
    }

    #[test]
    fn relabelling_preserves_component_count_and_mst_weight() {
        let g = generators::road_grid(7, 7, 9).unwrap();
        let r = relabel_by_degree(&g).unwrap();
        assert_eq!(
            properties::connected_components(&g).component_count,
            properties::connected_components(&r).component_count
        );
        assert_eq!(properties::mst_weight(&g), properties::mst_weight(&r));
    }

    #[test]
    fn reverse_transposes_directed_graphs() {
        let g = GraphBuilder::new(3).edge(0, 1).edge(1, 2).build().unwrap();
        let t = reverse(&g).unwrap();
        assert!(t.has_edge(1, 0));
        assert!(t.has_edge(2, 1));
        assert!(!t.has_edge(0, 1));
    }

    #[test]
    fn reverse_of_undirected_is_identity() {
        let g = generators::cycle(6).unwrap();
        assert_eq!(reverse(&g).unwrap(), g);
    }

    #[test]
    fn reverse_keeps_weights() {
        let g = GraphBuilder::new(2).weighted_edge(0, 1, 9).build().unwrap();
        let t = reverse(&g).unwrap();
        assert_eq!(t.edge_weight(1, 0), Some(9));
    }
}
